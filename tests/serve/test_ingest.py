"""Ingestion: buffer stamping/draining and the asyncio TCP server."""

import socket
import time

import pytest

from repro.core.clock import ManualClock, WallClock
from repro.errors import ServeError
from repro.serve.ingest import IngestBuffer, IngestServer
from repro.serve.protocol import encode_tuple


# ---------------------------------------------------------------------- #
# IngestBuffer (deterministic, via ManualClock)
# ---------------------------------------------------------------------- #
def test_buffer_stamps_with_clock():
    clock = ManualClock()
    buf = IngestBuffer(clock)
    clock.advance(1.25)
    assert buf.push((1,), "a")
    clock.advance(0.5)
    assert buf.push((2,), "a")
    due = buf.drain_until(10.0)
    assert [(t, v) for t, v, _ in due] == [(1.25, (1,)), (1.75, (2,))]


def test_buffer_drain_respects_boundary():
    clock = ManualClock()
    buf = IngestBuffer(clock)
    for dt in (0.1, 0.2, 0.3):
        clock.advance(dt)
        buf.push((dt,), "a")
    due = buf.drain_until(0.3)  # strictly-before semantics
    assert len(due) == 1
    assert len(buf) == 2
    rest = buf.drain_until(100.0)
    assert len(rest) == 2
    assert len(buf) == 0


def test_buffer_bounded_drops():
    buf = IngestBuffer(ManualClock(), maxlen=2)
    assert buf.push((1,), "a")
    assert buf.push((2,), "a")
    assert not buf.push((3,), "a")
    assert buf.accepted == 2
    assert buf.dropped == 1
    assert len(buf) == 2


def test_buffer_rejects_bad_maxlen():
    with pytest.raises(ServeError):
        IngestBuffer(ManualClock(), maxlen=0)


def test_buffer_drain_preserves_stamp_order():
    clock = ManualClock()
    buf = IngestBuffer(clock)
    for i in range(50):
        clock.advance(0.01)
        buf.push((i,), "a")
    due = buf.drain_until(1000.0)
    times = [t for t, _, _ in due]
    assert times == sorted(times)


# ---------------------------------------------------------------------- #
# IngestServer (real sockets on loopback)
# ---------------------------------------------------------------------- #
def _started_server():
    clock = WallClock()
    clock.start()
    buf = IngestBuffer(clock)
    server = IngestServer(buf, port=0)
    server.start()
    return server, buf


def _send(port, payload: bytes):
    with socket.create_connection(("127.0.0.1", port), timeout=5.0) as sock:
        sock.sendall(payload)


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def test_server_binds_ephemeral_port():
    server, _ = _started_server()
    try:
        assert server.port > 0
    finally:
        server.stop()


def test_server_accepts_and_stamps_tuples():
    server, buf = _started_server()
    try:
        _send(server.port,
              encode_tuple((1, 2), source="s1") + b"3,4\n")
        assert _wait_for(lambda: buf.accepted == 2)
        due = buf.drain_until(float("inf"))
        assert [(v, s) for _, v, s in due] == [((1, 2), "s1"),
                                               ((3, 4), "live")]
        assert all(t >= 0.0 for t, _, _ in due)
    finally:
        server.stop()


def test_server_counts_malformed_and_keeps_connection():
    server, buf = _started_server()
    try:
        _send(server.port, b"{broken\n" + encode_tuple((9,)))
        assert _wait_for(lambda: buf.accepted == 1)
        assert server.malformed == 1
        assert server.bytes_read > 0
    finally:
        server.stop()


def test_server_records_sender_skew():
    server, buf = _started_server()
    try:
        _send(server.port, encode_tuple((1,), sent=time.time() - 2.0))
        assert _wait_for(lambda: buf.accepted == 1)
        assert server.skew_last >= 1.0  # sent "2 seconds ago"
        assert server.skew_max >= server.skew_last > 0
    finally:
        server.stop()


def test_server_stop_closes_listener():
    server, _ = _started_server()
    port = server.port
    server.stop()
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", port), timeout=0.5)


def test_server_stop_is_idempotent():
    server, _ = _started_server()
    server.stop()
    server.stop()


def test_server_snapshot_counts_connections():
    server, buf = _started_server()
    try:
        _send(server.port, encode_tuple((1,)))
        _send(server.port, encode_tuple((2,)))
        assert _wait_for(lambda: buf.accepted == 2)
        snap = server.snapshot()
        assert snap.connections == 2
        assert snap.accepted == 2
        assert _wait_for(lambda: server.snapshot().open_connections == 0)
    finally:
        server.stop()
