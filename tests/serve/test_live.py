"""End-to-end live serving: wall-clock control against real socket load.

This is the acceptance scenario from the paper's deployment: tuples
arrive over a genuine TCP socket faster than the engine's capacity, the
wall-clock control loop sheds load, and the measured per-period delay
settles around the target. Latency bands are generous by default and
tight only under ``REPRO_RT_STRICT=1`` (slow shared runners jitter the
tick, which widens — but does not break — convergence).
"""

import json
import os
import urllib.request

import pytest

from repro.core.clock import ManualClock
from repro.errors import ServeError
from repro.experiments.config import ExperimentConfig
from repro.obs import get_bus
from repro.serve import LiveRunner, build_live_runner
from repro.workloads import arrivals_from_trace, constant_rate
from repro.workloads.replay import TraceReplayer

STRICT = os.environ.get("REPRO_RT_STRICT", "") == "1"

CAPACITY = 200.0
PERIOD = 0.1
TARGET = 0.5


def _overload_run(strategy="CTRL", n_periods=30, overload=3.0, serve=False):
    config = ExperimentConfig(capacity=CAPACITY, period=PERIOD,
                              target=TARGET, duration=n_periods * PERIOD)
    runner = build_live_runner(config, strategy=strategy, backend="fluid",
                               serve=serve, max_periods=n_periods)
    runner.start()
    trace = constant_rate(CAPACITY * overload, n_periods, period=PERIOD)
    arrivals = arrivals_from_trace(trace, seed=3)
    replayer = TraceReplayer(arrivals, "127.0.0.1", runner.ingest_port,
                             speed=1.0, stamp_sent=True).start()
    return runner, replayer


def test_live_controller_sheds_and_converges():
    runner, replayer = _overload_run()
    try:
        assert runner.wait(timeout=60), "ticker never finished"
    finally:
        record = runner.stop()
        replayer.stop()

    periods = record.periods
    assert len(periods) == 30
    # the socket genuinely overloaded the node ...
    offered = sum(p.offered for p in periods)
    admitted = sum(p.admitted for p in periods)
    assert offered > CAPACITY * PERIOD * len(periods) * 1.5
    # ... so the controller had to shed a substantial fraction
    assert admitted < offered
    assert max(p.alpha for p in periods) > 0.2
    # and the delay estimate settled around the target
    tail = [p.delay_estimate for p in periods[len(periods) // 2:]]
    mean_tail = sum(tail) / len(tail)
    if STRICT:
        assert TARGET * 0.5 <= mean_tail <= TARGET * 1.5
    else:
        assert TARGET * 0.1 <= mean_tail <= TARGET * 3.0
    # measurements were stamped with wall time, monotonically
    times = [p.time for p in periods]
    assert times == sorted(times)
    assert times[-1] >= len(periods) * PERIOD * 0.9


def test_live_ingest_events_reach_the_bus():
    seen = []
    bus = get_bus()
    bus.subscribe(seen.append, kinds=("ingest",))
    try:
        runner, replayer = _overload_run(n_periods=10)
        try:
            assert runner.wait(timeout=30)
        finally:
            runner.stop()
            replayer.stop()
    finally:
        bus.unsubscribe(seen.append)
    assert len(seen) == 10
    assert sum(e.accepted for e in seen) > 0
    assert all(e.rate >= 0 for e in seen)
    ks = [e.k for e in seen]
    assert ks == sorted(ks)


def test_live_status_probe_mid_run():
    runner, replayer = _overload_run(n_periods=40, serve=True)
    try:
        assert runner.wait(timeout=2.0) is False  # still mid-run
        url = f"{runner.obs_server.url}/status"
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            doc = json.load(resp)
        svc = doc["service"]
        assert svc["mode"] == "live"
        assert svc["running"] is True
        assert svc["ingest"]["accepted"] > 0
        assert svc["periods_done"] > 0
        assert "delay_estimate" in svc
    finally:
        runner.stop()
        replayer.stop()
    assert runner.status()["running"] is False


def test_live_runner_rejects_bad_max_periods():
    config = ExperimentConfig()
    with pytest.raises(ServeError):
        build_live_runner(config, backend="fluid", max_periods=0)


def test_live_runner_double_start_rejected():
    config = ExperimentConfig(capacity=CAPACITY, period=PERIOD)
    runner = build_live_runner(config, backend="fluid", max_periods=2)
    runner.start()
    try:
        with pytest.raises(ServeError):
            runner.start()
    finally:
        runner.stop()


def test_live_runner_manual_clock_periods():
    """Deterministic period accounting: time moves only when we say so."""
    config = ExperimentConfig(capacity=CAPACITY, period=1.0, target=TARGET)
    clock = ManualClock()
    from repro.service.shard import build_shard
    shard = build_shard("manual", config, headroom=config.headroom,
                        target=TARGET, backend="fluid")
    runner = LiveRunner(shard.loop, entry_source=shard.entry_source,
                        clock=clock, max_periods=3)
    runner.start()
    try:
        # period 0: two tuples stamped inside [0, 1)
        clock.advance(0.5)
        runner.buffer.push((1,), "x")
        runner.buffer.push((2,), "x")
        clock.advance(0.6)  # now 1.1 -> boundary 1.0 passed
        assert _eventually(lambda: runner.status()["periods_done"] == 1)
        assert runner.record.periods[0].offered == 2
        clock.advance(1.0)  # close period 1 (empty)
        assert _eventually(lambda: runner.status()["periods_done"] == 2)
        assert runner.record.periods[1].offered == 0
        clock.advance(1.0)  # close period 2; ticker hits max_periods
        assert runner.wait(timeout=10)
    finally:
        record = runner.stop()
    assert len(record.periods) == 3


def test_live_ticker_charges_ingest_segment():
    """The buffer drain before each period lands in the flame's "ingest"
    segment, so live-mode coverage accounts for socket-side work too."""
    from repro.obs.tracing import PeriodTracer
    from repro.service.shard import build_shard
    config = ExperimentConfig(capacity=CAPACITY, period=1.0, target=TARGET)
    clock = ManualClock()
    shard = build_shard("flame", config, headroom=config.headroom,
                        target=TARGET, backend="fluid")
    shard.loop.tracer = PeriodTracer()
    runner = LiveRunner(shard.loop, entry_source=shard.entry_source,
                        clock=clock, max_periods=2)
    runner.start()
    try:
        clock.advance(0.5)
        for i in range(50):
            runner.buffer.push((i,), "x")
        clock.advance(0.6)
        assert _eventually(lambda: runner.status()["periods_done"] == 1)
        clock.advance(1.0)
        assert runner.wait(timeout=10)
    finally:
        runner.stop()
    flame = shard.loop.tracer.flame()
    assert flame["segments"].get("ingest", 0.0) > 0.0
    # the drain runs outside the period span, so it must show up in the
    # run totals even though no period row carries it
    assert shard.loop.tracer.segments["ingest"] > 0.0


def _eventually(predicate, timeout=10.0):
    import time
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()
