"""WallClock / ManualClock semantics.

Real-time bounds here are deliberately generous — a loaded CI runner can
stall any thread for tens of milliseconds. Tight bounds only apply under
``REPRO_RT_STRICT=1`` (mirroring the cpu-count gating in check_trend.py:
on shared runners, wall-clock precision is machine topology, not a bug).
"""

import os
import threading
import time

import pytest

from repro.core.clock import ManualClock, WallClock

STRICT = os.environ.get("REPRO_RT_STRICT", "") == "1"
#: generous-by-default tolerance for anything timed against the wall
SLACK = 0.05 if STRICT else 0.5


def test_wall_clock_starts_at_zero():
    clock = WallClock()
    clock.start()
    assert 0.0 <= clock.now() < SLACK


def test_wall_clock_start_is_idempotent():
    clock = WallClock()
    clock.start()
    time.sleep(0.02)
    before = clock.now()
    clock.start()  # must not re-anchor
    assert clock.now() >= before


def test_wall_clock_now_implicitly_anchors():
    clock = WallClock()
    assert not clock.started
    assert clock.now() >= 0.0
    assert clock.started


def test_wall_clock_advances_in_real_time():
    clock = WallClock()
    clock.start()
    t0 = clock.now()
    time.sleep(0.05)
    elapsed = clock.now() - t0
    assert elapsed >= 0.045  # sleep() never returns early
    if STRICT:
        assert elapsed < 0.05 + SLACK


def test_wait_until_returns_nonnegative_lateness():
    clock = WallClock()
    clock.start()
    late = clock.wait_until(clock.now() + 0.05)
    assert 0.0 <= late < SLACK


def test_wait_until_past_deadline_returns_immediately():
    clock = WallClock()
    clock.start()
    time.sleep(0.02)
    t0 = time.monotonic()
    late = clock.wait_until(0.0)
    assert late > 0.0
    assert time.monotonic() - t0 < SLACK


def test_wait_until_interrupted_by_stop_event():
    clock = WallClock()
    clock.start()
    stop = threading.Event()
    result = {}

    def waiter():
        result["late"] = clock.wait_until(clock.now() + 30.0, stop)

    t = threading.Thread(target=waiter)
    t.start()
    stop.set()
    t.join(timeout=5.0)
    assert not t.is_alive(), "wait_until ignored the stop event"
    assert result["late"] < 0  # stopped before the deadline


def test_manual_clock_is_deterministic():
    clock = ManualClock()
    assert clock.now() == 0.0
    clock.advance(1.5)
    assert clock.now() == 1.5
    assert clock.wait_until(1.0) == pytest.approx(0.5)


def test_manual_clock_rejects_backwards():
    clock = ManualClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_manual_clock_wait_wakes_on_advance():
    clock = ManualClock()
    result = {}

    def waiter():
        result["late"] = clock.wait_until(2.0)

    t = threading.Thread(target=waiter)
    t.start()
    clock.advance(2.5)
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert result["late"] == pytest.approx(0.5)


def test_manual_clock_wait_respects_stop():
    clock = ManualClock()
    stop = threading.Event()
    result = {}

    def waiter():
        result["late"] = clock.wait_until(10.0, stop)

    t = threading.Thread(target=waiter)
    t.start()
    stop.set()
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert result["late"] == pytest.approx(-10.0)
