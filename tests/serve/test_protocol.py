"""Wire-protocol framing: JSON lines, bare CSV, malformed input."""

import pytest

from repro.errors import ServeError
from repro.serve.protocol import MAX_LINE_BYTES, decode_line, encode_tuple


def test_json_round_trip():
    line = encode_tuple((430, 212, 317), source="bike", sent=1000.5)
    assert line.endswith(b"\n")
    values, source, sent = decode_line(line)
    assert values == (430, 212, 317)
    assert source == "bike"
    assert sent == 1000.5


def test_json_minimal_frame_defaults():
    values, source, sent = decode_line(b'{"v": [1, 2]}',
                                       default_source="fallback")
    assert values == (1, 2)
    assert source == "fallback"
    assert sent is None


def test_json_preserves_mixed_types():
    line = encode_tuple((1, 2.5, "station-a"))
    values, _, _ = decode_line(line)
    assert values == (1, 2.5, "station-a")


def test_csv_fallback():
    values, source, sent = decode_line(b"430,212,3.5,bike-x\n",
                                       default_source="csv")
    assert values == (430, 212, 3.5, "bike-x")
    assert source == "csv"
    assert sent is None


def test_csv_single_field():
    values, _, _ = decode_line(b"7")
    assert values == (7,)


@pytest.mark.parametrize("line", [
    b"",
    b"   \n",
    b"{not json}",
    b'{"no_v": 1}',
    b'{"v": "not-a-list"}',
    b'{"v": [1], "s": ""}',
    b'{"v": [1], "s": 5}',
    b'{"v": [1], "t": "soon"}',
])
def test_malformed_lines_raise(line):
    with pytest.raises(ServeError):
        decode_line(line)


def test_oversized_line_rejected():
    with pytest.raises(ServeError):
        decode_line(b"1," * (MAX_LINE_BYTES // 2 + 1))


def test_encode_without_optionals_is_compact():
    line = encode_tuple((1,))
    assert b'"s"' not in line and b'"t"' not in line
