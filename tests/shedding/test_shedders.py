"""Unit tests for load shedders and the LSRM."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsms import Engine, identification_network
from repro.errors import SheddingError
from repro.shedding import (
    DropLocation,
    EntryShedder,
    LoadSheddingRoadmap,
    LsrmShedder,
    QueueShedder,
    SheddingPlan,
    drop_probability,
    output_yield,
    rank_locations,
)


def loaded_engine(rate=400, duration=4, seed=0):
    """An engine with a substantial backlog in its queues."""
    eng = Engine(identification_network(), headroom=0.97,
                 rng=random.Random(seed))
    rng = random.Random(seed)
    for k in range(duration):
        for i in range(rate):
            eng.submit(k + i / rate, tuple(rng.random() for _ in range(4)),
                       "src")
    eng.run_until(float(duration))
    return eng


class TestDropProbability:
    def test_eq13_basic(self):
        # v = 150 allowed of 200 expected -> drop 25%
        assert drop_probability(150.0, 200.0) == pytest.approx(0.25)

    def test_saturation_low(self):
        """Controller wants more than arrives: admit everything."""
        assert drop_probability(300.0, 200.0) == 0.0

    def test_saturation_high(self):
        """Controller wants negative admissions: drop everything."""
        assert drop_probability(-50.0, 200.0) == 1.0

    def test_zero_inflow(self):
        assert drop_probability(100.0, 0.0) == 0.0

    def test_negative_inflow_rejected(self):
        with pytest.raises(SheddingError):
            drop_probability(100.0, -1.0)


class TestEntryShedder:
    def test_alpha_zero_admits_all(self):
        s = EntryShedder(random.Random(0))
        s.set_allowance(100.0, 100.0)
        assert all(s.admit() for _ in range(100))
        assert s.loss_ratio == 0.0

    def test_alpha_one_drops_all(self):
        s = EntryShedder(random.Random(0))
        s.set_allowance(0.0, 100.0)
        assert not any(s.admit() for _ in range(100))
        assert s.loss_ratio == 1.0

    def test_statistical_drop_rate(self):
        s = EntryShedder(random.Random(42))
        s.set_allowance(70.0, 100.0)  # alpha = 0.3
        n = 10_000
        admitted = sum(1 for _ in range(n) if s.admit())
        assert admitted / n == pytest.approx(0.7, abs=0.02)

    def test_counters(self):
        s = EntryShedder(random.Random(1))
        s.set_allowance(50.0, 100.0)
        for _ in range(200):
            s.admit()
        assert s.offered_total == 200
        assert s.dropped_total + sum(
            0 for _ in ()) <= 200


class TestQueueShedder:
    def test_shed_tuples_exact(self):
        eng = loaded_engine()
        backlog = eng.queued_tuples
        assert backlog > 200
        s = QueueShedder(eng, random.Random(1))
        got = s.shed_tuples(100)
        assert got == 100
        assert eng.queued_tuples == backlog - 100
        assert s.dropped_total == 100

    def test_shed_tuples_clamps_to_backlog(self):
        eng = loaded_engine(rate=100, duration=1)
        eng.run_until(30.0)  # drain completely
        s = QueueShedder(eng, random.Random(1))
        assert s.shed_tuples(50) == 0

    def test_shed_load_accounts_coefficients(self):
        eng = loaded_engine()
        s = QueueShedder(eng, random.Random(2))
        target = 0.5  # CPU seconds
        saved = s.shed_load(target)
        assert saved >= target or eng.queued_tuples == 0
        # sanity: saved load should be close to target (one tuple overshoot)
        assert saved <= target + 1.5 * max(
            eng.network.load_coefficients().values())

    def test_negative_targets_rejected(self):
        eng = loaded_engine(rate=50, duration=1)
        s = QueueShedder(eng, random.Random(0))
        with pytest.raises(SheddingError):
            s.shed_load(-1.0)
        with pytest.raises(SheddingError):
            s.shed_tuples(-1)

    def test_zero_target_noop(self):
        eng = loaded_engine(rate=50, duration=1)
        s = QueueShedder(eng, random.Random(0))
        assert s.shed_load(0.0) == 0.0


class TestRoadmap:
    def test_rank_by_loss_gain(self):
        a = DropLocation("a", gain=2.0, loss=1.0)   # ratio 0.5
        b = DropLocation("b", gain=1.0, loss=1.0)   # ratio 1.0
        c = DropLocation("c", gain=4.0, loss=1.0)   # ratio 0.25
        assert [l.operator for l in rank_locations([a, b, c])] == ["c", "a", "b"]

    def test_zero_gain_ranked_last(self):
        a = DropLocation("a", gain=0.0, loss=0.0)
        b = DropLocation("b", gain=1.0, loss=10.0)
        assert rank_locations([a, b])[-1].operator == "a"

    def test_output_yield_exit_is_selectivity(self):
        net = identification_network()
        sels = {"f1": 0.9, "f3": 0.8, "f6": 0.7, "f11": 0.85}
        y = output_yield(net, sels)
        assert y["m14"] == pytest.approx(1.0)
        # entering f1 eventually yields ~ 0.9*(0.8+0.7)*0.85 outputs
        assert y["f1"] == pytest.approx(0.9 * (0.8 + 0.7) * 0.85)

    def test_roadmap_covers_all_operators(self):
        rm = LoadSheddingRoadmap(identification_network())
        assert len(rm.locations) == 14

    def test_plan_meets_load_target(self):
        net = identification_network()
        sels = {"f1": 0.9, "f3": 0.8, "f6": 0.7, "f11": 0.85}
        rm = LoadSheddingRoadmap(net, sels)
        depths = {name: 100 for name in net.operators}
        plan = rm.plan_for_load(0.2, depths)
        assert plan.load_saved >= 0.2
        assert plan.total_drops > 0

    def test_plan_respects_queue_depths(self):
        net = identification_network()
        rm = LoadSheddingRoadmap(net)
        depths = {name: 2 for name in net.operators}
        plan = rm.plan_for_load(100.0, depths)  # impossible target
        assert plan.total_drops <= 2 * 14

    def test_plan_negative_target_rejected(self):
        rm = LoadSheddingRoadmap(identification_network())
        with pytest.raises(SheddingError):
            rm.plan_for_load(-1.0, {})

    def test_plan_add_validation(self):
        plan = SheddingPlan()
        with pytest.raises(SheddingError):
            plan.add(DropLocation("a", 1.0, 1.0), -1)
        assert not plan


class TestLsrmShedder:
    def test_sheds_at_cheapest_locations_first(self):
        """LSRM should prefer late (low-yield-loss... high-gain-ratio)
        locations over expensive ones, losing fewer outputs than random."""
        eng1 = loaded_engine(seed=3)
        eng2 = loaded_engine(seed=3)
        lsrm = LsrmShedder(eng1, random.Random(0))
        rand = QueueShedder(eng2, random.Random(0))
        lsrm.shed_load(0.5)
        rand.shed_load(0.5)
        # both meet the load target; LSRM must not drop more tuples' worth
        # of *results* than random for the same load (here: proxied by the
        # roadmap ordering actually being used)
        first = lsrm.roadmap.best_location()
        ratios = [l.loss_gain_ratio for l in lsrm.roadmap.locations]
        assert ratios == sorted(ratios)
        assert first.loss_gain_ratio == min(ratios)

    def test_shed_load_reaches_target(self):
        eng = loaded_engine(seed=4)
        s = LsrmShedder(eng, random.Random(0))
        saved = s.shed_load(0.3)
        assert saved >= 0.3

    def test_shed_tuples_interface(self):
        eng = loaded_engine(seed=5)
        s = LsrmShedder(eng, random.Random(0))
        assert s.shed_tuples(50) == 50
        with pytest.raises(SheddingError):
            s.shed_tuples(-1)

    def test_refresh_rebuilds(self):
        eng = loaded_engine(seed=6)
        s = LsrmShedder(eng)
        before = s.roadmap
        s.refresh()
        assert s.roadmap is not before


@settings(max_examples=20, deadline=None)
@given(allowed=st.floats(min_value=-100, max_value=400),
       inflow=st.floats(min_value=0, max_value=400))
def test_drop_probability_always_valid(allowed, inflow):
    p = drop_probability(allowed, inflow)
    assert 0.0 <= p <= 1.0
