"""Unit tests for semantic and priority-aware shedding."""

import random

import pytest

from repro.errors import SheddingError
from repro.shedding import (
    PriorityEntryShedder,
    SemanticEntryShedder,
    StreamingQuantile,
)


class TestStreamingQuantile:
    def test_window_validation(self):
        with pytest.raises(SheddingError):
            StreamingQuantile(window=2)

    def test_empty_returns_none(self):
        assert StreamingQuantile().quantile(0.5) is None

    def test_quantile_bounds_checked(self):
        q = StreamingQuantile()
        q.add(1.0)
        with pytest.raises(SheddingError):
            q.quantile(1.5)

    def test_median_of_uniform(self):
        q = StreamingQuantile(window=1000)
        rng = random.Random(0)
        for __ in range(1000):
            q.add(rng.random())
        assert q.quantile(0.5) == pytest.approx(0.5, abs=0.05)

    def test_window_slides(self):
        q = StreamingQuantile(window=10)
        for v in range(100):
            q.add(float(v))
        assert len(q) == 10
        assert q.quantile(0.0) == 90.0


class TestSemanticShedder:
    def make(self, seed=0, **kw):
        return SemanticEntryShedder(utility=lambda v: v[0],
                                    rng=random.Random(seed), **kw)

    def test_no_shedding_admits_all(self):
        s = self.make()
        s.set_allowance(100.0, 100.0)
        assert all(s.admit((random.random(),)) for _ in range(100))
        assert s.utility_retention == 1.0

    def test_full_shedding_drops_all(self):
        s = self.make()
        s.set_allowance(0.0, 100.0)
        assert not any(s.admit((0.9,)) for _ in range(50))

    def test_loss_ratio_matches_alpha(self):
        s = self.make(seed=1)
        s.set_allowance(60.0, 100.0)  # alpha = 0.4
        rng = random.Random(2)
        n = 8000
        dropped = sum(1 for _ in range(n) if not s.admit((rng.random(),)))
        assert dropped / n == pytest.approx(0.4, abs=0.05)

    def test_drops_low_utility_first(self):
        """At the same loss ratio, the retained utility beats random."""
        s = self.make(seed=3)
        s.set_allowance(50.0, 100.0)  # alpha = 0.5
        rng = random.Random(4)
        # warm the quantile window
        for _ in range(600):
            s.admit((rng.random(),))
        admitted_scores = []
        dropped_scores = []
        for _ in range(4000):
            v = rng.random()
            if s.admit((v,)):
                admitted_scores.append(v)
            else:
                dropped_scores.append(v)
        assert (sum(admitted_scores) / len(admitted_scores)
                > sum(dropped_scores) / len(dropped_scores) + 0.2)
        assert s.utility_retention > 0.6  # > the 0.5 a fair coin would keep

    def test_dither_validation(self):
        with pytest.raises(SheddingError):
            self.make(dither=-0.1)


class TestPriorityShedder:
    def make(self, seed=0):
        return PriorityEntryShedder(
            {"gold": 3.0, "silver": 2.0, "bronze": 1.0},
            rng=random.Random(seed),
        )

    def test_needs_priorities(self):
        with pytest.raises(SheddingError):
            PriorityEntryShedder({})

    def test_unknown_source_rejected(self):
        s = self.make()
        with pytest.raises(SheddingError):
            s.admit("platinum")

    def _run_period(self, s, counts):
        admitted = {name: 0 for name in counts}
        offered = []
        for name, n in counts.items():
            offered.extend([name] * n)
        random.Random(9).shuffle(offered)
        for name in offered:
            if s.admit(name):
                admitted[name] += 1
        return admitted

    def test_drops_concentrate_on_low_priority(self):
        s = self.make(seed=5)
        counts = {"gold": 100, "silver": 100, "bronze": 100}
        # period 0: learn the mix (no allowance pressure yet)
        s.set_allowance(300.0, 300.0)
        self._run_period(s, counts)
        # period 1: only 150 of 300 allowed -> gold full, silver ~50%,
        # bronze nothing
        s.set_allowance(150.0, 300.0)
        admitted = self._run_period(s, counts)
        assert admitted["gold"] == 100
        assert admitted["bronze"] < 15
        assert 25 < admitted["silver"] < 75

    def test_everything_admitted_when_allowance_covers_demand(self):
        s = self.make(seed=6)
        s.set_allowance(1000.0, 300.0)
        admitted = self._run_period(s, {"gold": 50, "silver": 50, "bronze": 50})
        assert admitted == {"gold": 50, "silver": 50, "bronze": 50}

    def test_equal_priorities_share_proportionally(self):
        s = PriorityEntryShedder({"a": 1.0, "b": 1.0},
                                 rng=random.Random(7))
        s.set_allowance(400.0, 400.0)
        self._run_period(s, {"a": 200, "b": 200})
        s.set_allowance(200.0, 400.0)
        admitted = self._run_period(s, {"a": 200, "b": 200})
        assert admitted["a"] == pytest.approx(100, abs=30)
        assert admitted["b"] == pytest.approx(100, abs=30)

    def test_loss_by_source(self):
        s = self.make(seed=8)
        s.set_allowance(300.0, 300.0)
        self._run_period(s, {"gold": 100, "silver": 100, "bronze": 100})
        s.set_allowance(100.0, 300.0)
        self._run_period(s, {"gold": 100, "silver": 100, "bronze": 100})
        loss = s.loss_by_source()
        assert loss["gold"] < loss["bronze"]
