"""Tuple tracing across the service layer: shards, fleet relay, summaries."""

import pytest

from repro.experiments import ExperimentConfig, build_service_workload
from repro.obs import EventBus
from repro.obs.tuptrace import TraceCollector
from repro.service import FleetConfig, ServiceConfig, build_fleet, build_service

CFG = ExperimentConfig(duration=40.0, seed=3)


class TestStreamServiceTuptrace:
    def test_run_produces_per_shard_tail_summary(self):
        svc = ServiceConfig(n_shards=2, n_sources=2, tuptrace=1.0)
        arrivals = build_service_workload(CFG, svc)
        result = build_service(CFG, svc).run(arrivals, CFG.duration)
        assert result.tail_summary is not None
        assert set(result.tail_summary) == set(svc.shard_names)
        for name, summary in result.tail_summary.items():
            assert summary["sampled"] > 0, name
            assert summary["sampled"] == (summary["completed"]
                                          + summary["dropped"])
            assert set(summary["percentiles"]) == {"p50", "p95", "p99"}
            assert summary["percentiles"]["p99"] >= \
                summary["percentiles"]["p50"] >= 0.0

    def test_tuptrace_off_leaves_summary_empty(self):
        svc = ServiceConfig(n_shards=2, n_sources=2)
        arrivals = build_service_workload(CFG, svc)
        result = build_service(CFG, svc).run(arrivals, CFG.duration)
        assert result.tail_summary is None

    def test_shards_sample_independent_deterministic_sets(self):
        """Per-shard seeds differ, so the same arrival sequence numbers
        are not forced to co-sample — but reruns are identical."""
        svc = ServiceConfig(n_shards=2, n_sources=2, tuptrace=0.2)
        arrivals = build_service_workload(CFG, svc)

        def traced_ids():
            bus = EventBus()
            collector = TraceCollector(bus, max_finished=100_000)
            service = build_service(CFG, svc)
            service.bus = bus
            for i, shard in enumerate(service.shards):
                scoped = bus.scoped(shard.name)
                shard.loop.bus = scoped
                shard.loop.tuple_tracer.bus = scoped
            service.run(arrivals, CFG.duration)
            collector.close()
            return sorted((d["shard"], d["tuple_id"], d["outcome"])
                          for d in collector.records())

        first = traced_ids()
        assert first
        assert {shard for shard, _, __ in first} == set(svc.shard_names)
        assert traced_ids() == first

    def test_invalid_fraction_rejected(self):
        from repro.errors import ServiceError
        with pytest.raises(ServiceError):
            ServiceConfig(n_shards=2, n_sources=2, tuptrace=1.5)


class TestFleetTuptrace:
    def test_fleet_relays_traces_with_worker_provenance(self):
        svc = FleetConfig(n_shards=2, n_sources=2, tuptrace=0.2, relay=True)
        arrivals = build_service_workload(CFG, svc)
        bus = EventBus()
        collector = TraceCollector(bus, max_finished=100_000)
        build_fleet(CFG, svc, bus=bus).run(arrivals, CFG.duration)
        collector.close()
        records = collector.records()
        assert records, "no traces crossed the process boundary"
        assert all(d.get("worker") for d in records)
        assert {d["shard"] for d in records} == set(svc.shard_names)

    def test_fleet_traces_match_lockstep(self):
        """Sync-mode equivalence extends to the sampled trace stream:
        same per-shard seeds, same arrivals -> same tuple ids and
        outcomes, worker provenance aside."""
        svc = FleetConfig(n_shards=2, n_sources=2, tuptrace=0.2, relay=True)
        arrivals = build_service_workload(CFG, svc)

        fleet_bus = EventBus()
        fleet_collector = TraceCollector(fleet_bus, max_finished=100_000)
        build_fleet(CFG, svc, bus=fleet_bus).run(arrivals, CFG.duration)
        fleet_collector.close()

        lock_bus = EventBus()
        lock_collector = TraceCollector(lock_bus, max_finished=100_000)
        service = build_service(CFG, svc.as_lockstep())
        service.bus = lock_bus
        for shard in service.shards:
            scoped = lock_bus.scoped(shard.name)
            shard.loop.bus = scoped
            shard.loop.tuple_tracer.bus = scoped
        service.run(arrivals, CFG.duration)
        lock_collector.close()

        def key(docs):
            return sorted((d["shard"], d["tuple_id"], d["outcome"],
                           round(d["latency"], 9) if d["latency"] is not None
                           else None)
                          for d in docs)

        assert key(fleet_collector.records()) == key(lock_collector.records())
