"""Health detectors fed through the process-fleet event relay.

The parent's :class:`HealthMonitor` never sees a worker's bus directly —
every event crosses the relay, which stamps ``pid<pid>/<shard>``
provenance onto the shard label.  These tests pin down that the
detectors (a) still open episodes on relayed streams and (b) keep the
provenance, so a fleet post-mortem names the exact worker process.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.service_demo import run_service_experiment
from repro.service.config import FleetConfig

pytestmark = pytest.mark.skipif(
    __import__("multiprocessing").get_all_start_methods() == ["spawn"],
    reason="fleet tests assume a fork-capable platform")


class TestRelayedDetectors:
    def test_qos_violation_opens_from_relayed_worker_events(self):
        # hard overload on both shards: QoS cannot hold, every worker's
        # relayed period stream must open its own qos episode upstream
        cfg = ExperimentConfig(duration=40.0, seed=3, headroom=0.2)
        svc = FleetConfig(n_shards=2, n_sources=2, sync=True, health=True,
                          loss_bound=0.1)
        result = run_service_experiment(cfg, svc, "web")
        assert result.health is not None
        qos = [r for r in result.health["reports"]
               if r["kind"] == "qos_violation"]
        assert qos, "overloaded fleet must flag sustained QoS violation"
        shards = {r["shard"] for r in qos}
        # provenance: the report names the worker process, not just the shard
        assert all(s.startswith("pid") and "/" in s for s in shards)
        assert {s.split("/", 1)[1] for s in shards} == {"shard0", "shard1"}

    def test_shard_imbalance_opens_from_relayed_worker_events(self):
        # no coordination + a hotspot: shard0 drowns while shard1 idles;
        # the imbalance detector correlates the two relayed streams
        cfg = ExperimentConfig(duration=60.0, seed=7)
        svc = FleetConfig(n_shards=2, n_sources=2, sync=True, health=True,
                          mode="independent", hotspot_factor=6.0)
        result = run_service_experiment(cfg, svc, "web")
        reports = [r for r in result.health["reports"]
                   if r["kind"] == "shard_imbalance"]
        assert reports, "skewed independent fleet must flag imbalance"
        worst = reports[0]
        # the worst shard carries worker provenance and is the hotspot
        assert worst["shard"].startswith("pid")
        assert worst["shard"].endswith("/shard0")

    def test_healthy_fleet_run_stays_clean(self):
        cfg = ExperimentConfig(duration=30.0, seed=5)
        svc = FleetConfig(n_shards=2, n_sources=2, sync=True, health=True,
                          per_source_rate=25.0)
        result = run_service_experiment(cfg, svc, "web")
        assert result.health is not None
        assert result.health["critical_open"] is False
        assert not any(r["kind"] == "qos_violation"
                       for r in result.health["reports"])
