"""The process fleet: lockstep equivalence, failure recovery, async mode.

The fleet's whole contract is that promoting shards to worker processes
changes the execution substrate, not the trajectory: in sync mode the
coordinator sees identical per-period records in identical order, so
every signal must come out float-for-float equal to the single-process
:class:`~repro.service.StreamService` — including after a worker is
killed mid-run and its replacement rejoins by deterministic replay.
"""

import pytest

from repro.errors import ServiceError
from repro.experiments import (
    ExperimentConfig,
    FleetComparison,
    build_service_workload,
    fleet_comparison,
    run_service_experiment,
)
from repro.obs import EventBus, WorkerDown, WorkerRestarted
from repro.service import (
    FleetConfig,
    ServiceConfig,
    ShardProxy,
    build_fleet,
    build_service,
)

CFG = ExperimentConfig(duration=60.0, seed=11)
SVC = FleetConfig(n_shards=2, n_sources=2)


@pytest.fixture(scope="module")
def workload():
    return build_service_workload(CFG, SVC)


@pytest.fixture(scope="module")
def lockstep(workload):
    return build_service(CFG, SVC.as_lockstep()).run(workload, CFG.duration)


def assert_records_equal(lock, fleet):
    """Bit-for-bit equality of every shard's full record set."""
    assert set(lock.shard_records) == set(fleet.shard_records)
    for name, ref in lock.shard_records.items():
        got = fleet.shard_records[name]
        assert got.periods == ref.periods, name
        assert got.departures == ref.departures, name
        assert got.offered_total == ref.offered_total, name
        assert got.entry_dropped_total == ref.entry_dropped_total, name


# --------------------------------------------------------------------- #
# sync mode: deterministic lockstep equivalence
# --------------------------------------------------------------------- #
class TestSyncEquivalence:
    def test_fleet_matches_lockstep_bit_for_bit(self, workload, lockstep):
        fleet = build_fleet(CFG, SVC).run(workload, CFG.duration)
        assert_records_equal(lockstep, fleet)

    def test_coordinator_history_identical(self, workload, lockstep):
        fleet = build_fleet(CFG, SVC).run(workload, CFG.duration)
        assert fleet.coordinator_history == lockstep.coordinator_history

    def test_run_service_experiment_routes_fleet_config(self):
        result = run_service_experiment(CFG, SVC)
        reference = run_service_experiment(CFG, SVC.as_lockstep())
        assert_records_equal(reference, result)

    def test_fleet_comparison_helper(self):
        comp = fleet_comparison(CFG, SVC)
        assert isinstance(comp, FleetComparison)
        assert comp.aggregates_match()
        assert comp.speedup > 0


# --------------------------------------------------------------------- #
# failure injection: kill a worker mid-run, replay, rejoin
# --------------------------------------------------------------------- #
class TestFailureRecovery:
    @pytest.fixture(scope="class")
    def killed_run(self, workload):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=("worker_down", "worker_restarted"))
        svc = FleetConfig(n_shards=2, n_sources=2, health=True)
        fleet = build_fleet(CFG, svc, bus=bus, fail_at={"shard1": 30})
        result = fleet.run(workload, CFG.duration)
        return result, seen, fleet

    def test_aggregates_survive_worker_death(self, killed_run, lockstep):
        result, __, __fleet = killed_run
        assert_records_equal(lockstep, result)
        assert result.coordinator_history == lockstep.coordinator_history

    def test_down_and_restart_events_emitted(self, killed_run):
        __, seen, __fleet = killed_run
        downs = [e for e in seen if isinstance(e, WorkerDown)]
        restarts = [e for e in seen if isinstance(e, WorkerRestarted)]
        assert len(downs) == 1 and downs[0].shard == "shard1"
        assert downs[0].exitcode == 17
        assert len(restarts) == 1 and restarts[0].restarts == 1
        # the replacement replayed up to the last acknowledged period
        assert restarts[0].resumed_k == downs[0].last_k

    def test_health_monitor_surfaces_the_outage(self, killed_run):
        result, __, __fleet = killed_run
        assert result.health is not None
        assert result.health["counts"].get("worker_down") == 1
        report = next(r for r in result.health["reports"]
                      if r["kind"] == "worker_down")
        assert report["shard"] == "shard1"
        assert report["severity"] == "critical"
        assert not report["open"]          # closed once the worker rejoined

    def test_status_counts_the_restart(self, killed_run):
        __, __, fleet = killed_run
        status = fleet.status()
        assert status["shards"]["shard1"]["restarts"] == 1
        assert status["shards"]["shard0"]["restarts"] == 0

    def test_max_restarts_exhaustion_fails_the_run(self, workload):
        svc = FleetConfig(n_shards=2, n_sources=2, max_restarts=0)
        fleet = build_fleet(CFG, svc, fail_at={"shard0": 10})
        with pytest.raises(ServiceError, match="max_restarts"):
            fleet.run(workload, CFG.duration)


# --------------------------------------------------------------------- #
# async mode: free-running workers, conservation still holds
# --------------------------------------------------------------------- #
class TestAsyncMode:
    def test_async_fleet_completes_and_conserves_tuples(self, workload):
        svc = FleetConfig(n_shards=2, n_sources=2, sync=False)
        result = build_fleet(CFG, svc).run(workload, CFG.duration)
        offered = sum(r.offered_total for r in result.shard_records.values())
        assert offered == len(workload)
        for record in result.shard_records.values():
            assert len(record.periods) == CFG.n_periods
        assert len(result.coordinator_history) == CFG.n_periods


# --------------------------------------------------------------------- #
# config + proxy surface
# --------------------------------------------------------------------- #
class TestConfigAndProxy:
    def test_as_lockstep_strips_fleet_knobs(self):
        svc = FleetConfig(n_shards=3, n_sources=3, serve=True)
        lock = svc.as_lockstep()
        assert type(lock) is ServiceConfig
        assert lock.n_shards == 3
        assert not lock.serve        # never fight the fleet over the port

    def test_fleet_config_validation(self):
        with pytest.raises(ServiceError, match="max_restarts"):
            FleetConfig(max_restarts=-1)
        with pytest.raises(ServiceError, match="worker_patience"):
            FleetConfig(worker_patience=0.0)

    def test_plain_service_config_is_promoted(self, workload, lockstep):
        fleet = build_fleet(CFG, ServiceConfig(n_shards=2, n_sources=2))
        result = fleet.run(workload, CFG.duration)
        assert_records_equal(lockstep, result)

    def test_trace_mode_rejected(self):
        with pytest.raises(ServiceError, match="trac"):
            build_fleet(CFG, FleetConfig(n_shards=2, n_sources=2, trace=True))

    def test_fail_at_unknown_shard_rejected(self):
        with pytest.raises(ServiceError, match="unknown shards"):
            build_fleet(CFG, SVC, fail_at={"nope": 3})

    def test_proxy_mirrors_shard_validation(self):
        proxy = ShardProxy("s", headroom=0.5, base_target=2.0, period=1.0)
        with pytest.raises(ServiceError):
            proxy.set_headroom(0.0)
        with pytest.raises(ServiceError):
            proxy.set_target(-1.0)
        proxy.set_headroom(0.25)
        proxy.set_target(3.0)
        proxy.cap_alpha(0.4)
        assert proxy.take_ops() == [("headroom", 0.25), ("target", 3.0),
                                    ("alpha_cap", 0.4)]
        assert proxy.take_ops() == []      # drained
