"""Live source migration: drain -> cutover -> recover, on every runtime.

The migration transaction's contract is threefold (docs/THEORY.md §13):

* **safety** — the old shard drains its in-flight work before the
  routing table commits the cutover, so no admitted tuple is discarded
  or split across shards;
* **determinism** — the sync-mode process fleet reproduces the lockstep
  service float-for-float *through* a coordinator-triggered migration,
  including after a worker dies and replays a journalled cutover epoch;
* **efficacy** — for a persistent hotspot that CPU-share rebalancing
  cannot fix (the per-shard ceiling binds), migration + rebalancing
  beats rebalancing alone on worst-shard QoS violation.
"""

import pytest

from repro.experiments import ExperimentConfig, build_service_workload
from repro.obs import EventBus
from repro.service import (
    FleetConfig,
    MigrationPolicy,
    ServiceConfig,
    build_fleet,
    build_service,
    build_shard,
)

# A persistent hotspot one shard cannot absorb: 8 sources round-robin on
# 4 shards puts s0 (the 4x hotspot) and s4 together on shard0; the 0.32
# per-shard ceiling binds there while every other shard has surplus, so
# the coordinator's migration policy moves s4 off shard0 early in the run.
CFG = ExperimentConfig(duration=60.0, seed=7)
MIG = FleetConfig(n_shards=4, n_sources=8, hotspot_factor=4.0,
                  per_source_rate=14.0, headroom_ceiling=0.32,
                  migration=True, migration_patience=3,
                  migration_cooldown=10)


@pytest.fixture(scope="module")
def workload():
    return build_service_workload(CFG, MIG)


@pytest.fixture(scope="module")
def lockstep(workload):
    """The reference run, with the bus taps the migration must fire."""
    bus = EventBus()
    events = []
    bus.subscribe(events.append,
                  kinds=("route_changed", "migration_started",
                         "migration_completed"))
    service = build_service(CFG, MIG.as_lockstep())
    # rewire the service (and its shards) onto the test-local bus
    service.bus = bus
    service.coordinator.bus = bus
    for shard in service.shards:
        scoped = bus.scoped(shard.name)
        shard.loop.bus = scoped
        shard.engine.bus = scoped
    result = service.run(workload, CFG.duration)
    return result, events, service


def migration_entries(history):
    return [(e["k"], e["migration"]) for e in history if "migration" in e]


def assert_records_equal(lock, fleet):
    assert set(lock.shard_records) == set(fleet.shard_records)
    for name, ref in lock.shard_records.items():
        got = fleet.shard_records[name]
        assert got.periods == ref.periods, name
        assert got.departures == ref.departures, name
        assert got.offered_total == ref.offered_total, name


# --------------------------------------------------------------------- #
# the drain half of the transaction, in isolation
# --------------------------------------------------------------------- #
class TestDrainSource:
    def build(self):
        shard = build_shard("s", CFG, headroom=0.25, target=CFG.target,
                            engine_seed=3)
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        shard.loop.bus = bus
        return shard, events

    def load(self, shard, n=200):
        record = shard.loop.begin()
        due = [(i * 0.004, (0.5, 0.5, 0.5, 0.5), shard.entry_source)
               for i in range(n)]
        shard.loop.run_period(record, 0, due)
        return record

    def test_drain_empties_the_backlog(self):
        shard, events = self.build()
        self.load(shard)
        backlog = shard.engine.outstanding
        assert backlog > 0
        report = shard.drain_source("s4", budget=30.0, k=0,
                                    from_shard=0, to_shard=3)
        assert report.backlog == backlog
        assert report.leftover == 0 and not report.truncated
        assert report.drained == backlog
        assert 0 < report.virtual_seconds <= 30.0
        assert shard.engine.outstanding == 0
        kinds = [e.kind for e in events]
        assert "migration_started" in kinds
        assert "migration_completed" in kinds
        done = next(e for e in events if e.kind == "migration_completed")
        assert done.drained == backlog and done.to_shard == 3

    def test_exhausted_budget_truncates(self):
        shard, __ = self.build()
        self.load(shard)
        report = shard.drain_source("s4", budget=0.01)
        assert report.truncated
        assert report.leftover > 0
        # may overshoot the deadline by at most one operator execution
        assert report.virtual_seconds < 0.1

    def test_zero_budget_is_a_pure_measurement(self):
        shard, __ = self.build()
        self.load(shard)
        report = shard.drain_source("s4", budget=0.0)
        assert report.drained == 0
        assert report.leftover == report.backlog


# --------------------------------------------------------------------- #
# lockstep: the coordinator plans, the service executes
# --------------------------------------------------------------------- #
class TestLockstepMigration:
    def test_exactly_one_migration_planned_and_stamped(self, lockstep):
        result, __, service = lockstep
        entries = migration_entries(result.coordinator_history)
        assert len(entries) == 1
        k, plan = entries[0]
        assert plan["from"] == 0          # the hotspot shard
        assert plan["to"] != 0
        assert plan["source"] in ("s0", "s4")
        # the executing runtime stamped the cutover epoch into the history
        assert plan["epoch"] == 1
        assert service.router.epoch == 1
        assert service.router.shard_of(plan["source"]) == plan["to"]
        assert service.router.source_epoch(plan["source"]) == plan["epoch"]

    def test_migration_events_on_the_bus(self, lockstep):
        result, events, __ = lockstep
        (k, plan), = migration_entries(result.coordinator_history)
        kinds = [e.kind for e in events]
        assert kinds.count("route_changed") == 1
        assert kinds.count("migration_started") == 1
        assert kinds.count("migration_completed") == 1
        route = next(e for e in events if e.kind == "route_changed")
        assert (route.k, route.source) == (k, plan["source"])
        assert (route.from_shard, route.to_shard) == (plan["from"], plan["to"])
        assert route.epoch == plan["epoch"]
        started = next(e for e in events if e.kind == "migration_started")
        assert started.shard == f"shard{plan['from']}"

    def test_status_reports_epoch_and_migrations(self, lockstep):
        __, __, service = lockstep
        status = service.status()
        assert status["routing_epoch"] == 1
        assert status["migrations"] == 1

    def test_tuple_conservation_across_the_move(self, lockstep, workload):
        result, __, __svc = lockstep
        offered = sum(r.offered_total for r in result.shard_records.values())
        assert offered == len(workload)


# --------------------------------------------------------------------- #
# fleet: journalled cutovers reproduce the lockstep trajectory
# --------------------------------------------------------------------- #
class TestFleetMigration:
    def test_sync_fleet_matches_lockstep_through_migration(
            self, workload, lockstep):
        reference, __, __svc = lockstep
        fleet = build_fleet(CFG, MIG)
        result = fleet.run(workload, CFG.duration)
        assert_records_equal(reference, result)
        assert result.coordinator_history == reference.coordinator_history
        status = fleet.status()
        assert status["routing_epoch"] == 1
        assert status["migrations"] == 1

    def test_worker_killed_after_cutover_replays_the_epoch(
            self, workload, lockstep):
        reference, __, __svc = lockstep
        (cut_k, plan), = migration_entries(reference.coordinator_history)
        target = f"shard{plan['to']}"
        # kill the migration *target* well after the cutover: its
        # replacement must replay the journalled route op to host the
        # migrated source's post-cutover tuples, or the records diverge
        fail_k = cut_k + 15
        fleet = build_fleet(CFG, MIG, fail_at={target: fail_k})
        result = fleet.run(workload, CFG.duration)
        assert_records_equal(reference, result)
        assert result.coordinator_history == reference.coordinator_history
        status = fleet.status()
        assert status["shards"][target]["restarts"] == 1
        # the rejoined worker reported the post-migration routing epoch
        assert status["shards"][target]["epoch"] == plan["epoch"]
        assert status["routing_epoch"] == plan["epoch"]


# --------------------------------------------------------------------- #
# acceptance: migration beats rebalancing alone on a stuck hotspot
# --------------------------------------------------------------------- #
class TestMigrationEfficacy:
    def test_migration_recovers_worst_shard_qos(self, workload, lockstep):
        with_migration, __, __svc = lockstep
        baseline_svc = ServiceConfig(
            **{**{f: getattr(MIG, f) for f in (
                "n_shards", "n_sources", "hotspot_factor",
                "per_source_rate", "headroom_ceiling")},
               "migration": False})
        baseline = build_service(CFG, baseline_svc).run(workload, CFG.duration)
        assert not migration_entries(baseline.coordinator_history)
        __, worst_without = baseline.worst_shard("accumulated_violation")
        __, worst_with = with_migration.worst_shard("accumulated_violation")
        # rebalancing alone cannot fix a shard stuck at the ceiling...
        assert worst_without > 10.0
        # ...moving a source off it can
        assert worst_with < 0.1 * worst_without

    def test_hotspot_shard_itself_recovers(self, workload, lockstep):
        with_migration, __, __svc = lockstep
        qos = with_migration.shard_qos()
        assert qos["shard0"].accumulated_violation < 5.0


# --------------------------------------------------------------------- #
# policy-level guards (no runtime needed)
# --------------------------------------------------------------------- #
class TestMigrationPolicyGuards:
    def entry(self, demands, headrooms):
        return {"demand": list(demands), "headroom": list(headrooms)}

    def test_no_plan_when_everyone_is_overloaded(self):
        from repro.service import RoutingTable

        policy = MigrationPolicy(patience=1)
        table = RoutingTable(2, pins={"a": 0, "b": 0, "c": 1})
        shards = [_FakeShard(), _FakeShard()]
        periods = [_FakePeriod(), _FakePeriod()]
        counts = {"a": 10, "b": 10, "c": 10}
        # both shards run a deficit: there is no cold shard to move to
        plan = policy.consider(0, self.entry([0.9, 0.9], [0.4, 0.4]),
                               shards, periods, table, counts)
        assert plan is None

    def test_single_source_shard_is_never_drained(self):
        from repro.service import RoutingTable

        policy = MigrationPolicy(patience=1)
        table = RoutingTable(2, pins={"only": 0, "x": 1, "y": 1})
        shards = [_FakeShard(), _FakeShard()]
        periods = [_FakePeriod(), _FakePeriod()]
        counts = {"only": 50, "x": 1, "y": 1}
        plan = policy.consider(0, self.entry([0.9, 0.1], [0.4, 0.4]),
                               shards, periods, table, counts)
        assert plan is None      # moving the only source just moves the spot

    def test_cooldown_blocks_back_to_back_moves(self):
        from repro.service import RoutingTable

        policy = MigrationPolicy(patience=1, cooldown=5)
        table = RoutingTable(2, pins={"a": 0, "b": 0, "c": 1})
        shards = [_FakeShard(), _FakeShard()]
        periods = [_FakePeriod(), _FakePeriod()]
        counts = {"a": 30, "b": 10, "c": 5}
        hot = self.entry([0.9, 0.1], [0.4, 0.4])
        first = policy.consider(0, hot, shards, periods, table, counts)
        assert first is not None
        table.migrate(first["source"], first["from"], first["to"])
        again = policy.consider(1, hot, shards, periods, table, counts)
        assert again is None     # inside the cooldown window
        assert policy.migrations == 1

    def test_max_migrations_caps_the_run(self):
        from repro.service import RoutingTable

        policy = MigrationPolicy(patience=1, cooldown=0, max_migrations=1)
        table = RoutingTable(2, pins={"a": 0, "b": 0, "c": 1})
        shards = [_FakeShard(), _FakeShard()]
        periods = [_FakePeriod(), _FakePeriod()]
        counts = {"a": 30, "b": 10, "c": 5}
        hot = self.entry([0.9, 0.1], [0.4, 0.4])
        first = policy.consider(0, hot, shards, periods, table, counts)
        assert first is not None
        table.migrate(first["source"], first["from"], first["to"])
        for k in range(1, 6):
            assert policy.consider(k, hot, shards, periods,
                                   table, counts) is None


class _FakeLoop:
    period = 1.0


class _FakeShard:
    loop = _FakeLoop()


class _FakePeriod:
    cost = 0.005
    offered = 100
    queue_length = 0.0
