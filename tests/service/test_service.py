"""The sharded service end to end: lockstep run, coordination, export.

The acceptance scenario of the service layer lives here: four shards, one
hotspot source at three times the regular load, and the claim that the
coordinator's headroom rebalancing achieves a lower worst-shard delay
violation than running the same four loops independently.
"""

import random

import pytest

from repro.errors import ServiceError
from repro.experiments import (
    ExperimentConfig,
    Job,
    build_service_workload,
    run_service_experiment,
    service_comparison,
)
from repro.metrics.export import load_json
from repro.service import (
    ServiceConfig,
    StreamService,
    build_service,
    make_router,
)
from repro.shedding import BoundedEntryShedder

CFG = ExperimentConfig(duration=120.0, seed=11)
SVC = ServiceConfig()  # 4 shards, 4 sources, hotspot x3 on s0


@pytest.fixture(scope="module")
def comparison():
    """One skewed run per mode, shared by the assertions below."""
    return {
        mode: run_service_experiment(CFG, SVC.with_mode(mode))
        for mode in ("independent", "headroom", "target")
    }


class TestAcceptance:
    def test_coordination_beats_independent_on_worst_shard(self, comparison):
        """The PR's core claim, asserted on the canonical skewed scenario."""
        worst = {mode: res.worst_shard("accumulated_violation")[1]
                 for mode, res in comparison.items()}
        assert worst["independent"] > 0, (
            "the hotspot must overload its shard under independent loops"
        )
        assert worst["headroom"] < worst["independent"]
        assert worst["target"] < worst["independent"]

    def test_hotspot_shard_is_the_one_overloaded(self, comparison):
        name, __ = comparison["independent"].worst_shard()
        # s0 (the hotspot) is pinned round-robin onto shard0
        assert name == "shard0"

    def test_headroom_moves_cpu_toward_hotspot(self, comparison):
        history = comparison["headroom"].coordinator_history
        final = history[-1]["headroom"]
        equal = SVC.total_headroom / SVC.n_shards
        assert final[0] > equal
        assert sum(final) == pytest.approx(SVC.total_headroom)

    def test_per_shard_records_cover_every_period(self, comparison):
        n = int(CFG.duration / CFG.period)
        for res in comparison.values():
            assert set(res.shard_records) == set(SVC.shard_names)
            for rec in res.shard_records.values():
                assert len(rec.periods) == n

    def test_aggregate_record_sums_offered(self, comparison):
        res = comparison["independent"]
        agg = res.aggregate
        assert agg.offered_total == sum(
            r.offered_total for r in res.shard_records.values())
        assert len(agg.periods) == int(CFG.duration / CFG.period)

    def test_export_through_existing_helpers(self, comparison, tmp_path):
        paths = comparison["headroom"].export(tmp_path / "svc")
        names = {p.name for p in paths}
        assert names == {f"{n}.json" for n in SVC.shard_names} | {
            "aggregate.json"}
        doc = load_json(tmp_path / "svc" / "aggregate.json")
        assert doc["offered_total"] == comparison[
            "headroom"].aggregate.offered_total
        assert "drain_truncated" in doc
        assert "qos" in doc and "loss_ratio" in doc["qos"]


class TestComparisonDriver:
    def test_service_jobs_fan_out(self):
        cfg = ExperimentConfig(duration=40.0, seed=5)
        comp = service_comparison(cfg, SVC, workers=2)
        assert set(comp.results) == {"independent", "headroom"}
        violations = comp.worst_shard_violation()
        assert set(violations) == {"independent", "headroom"}
        assert comp.coordination_gain() >= 1.0

    def test_pool_and_serial_runs_agree(self):
        cfg = ExperimentConfig(duration=40.0, seed=5)
        pooled = service_comparison(cfg, SVC, modes=("headroom",),
                                    workers=2).results["headroom"]
        serial = run_service_experiment(cfg, SVC.with_mode("headroom"))
        for name in pooled.shard_records:
            assert (pooled.shard_records[name].periods
                    == serial.shard_records[name].periods)

    def test_service_job_requires_workload_kind(self):
        from repro.errors import ExperimentError
        from repro.workloads import constant_rate
        with pytest.raises(ExperimentError):
            Job(config=CFG, workload=constant_rate(100.0, 10), service=SVC)

    def test_workload_has_hotspot_mass(self):
        arrivals = build_service_workload(CFG, SVC)
        counts = {}
        for __, __, source in arrivals:
            counts[source] = counts.get(source, 0) + 1
        hot = counts["s0"]
        regular = [counts[s] for s in ("s1", "s2", "s3")]
        for r in regular:
            assert hot == pytest.approx(SVC.hotspot_factor * r, rel=0.15)


class TestServiceConstruction:
    def test_build_service_shape(self):
        service = build_service(CFG, SVC)
        assert len(service.shards) == SVC.n_shards
        assert service.period == CFG.period
        headrooms = [s.headroom for s in service.shards]
        assert sum(headrooms) == pytest.approx(SVC.total_headroom)

    def test_router_shard_count_mismatch_rejected(self):
        service = build_service(CFG, SVC)
        with pytest.raises(ServiceError):
            StreamService(service.shards, make_router("hash", 2),
                          service.coordinator)

    def test_duplicate_shard_names_rejected(self):
        service = build_service(CFG, SVC)
        shards = list(service.shards)
        shards[1] = shards[0]
        with pytest.raises(ServiceError):
            StreamService(shards, service.router, service.coordinator)

    def test_non_positive_duration_rejected(self):
        service = build_service(CFG, SVC)
        with pytest.raises(ServiceError):
            service.run([], 0.0)

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            ServiceConfig(n_shards=0)
        with pytest.raises(ServiceError):
            ServiceConfig(hotspot_index=9)
        with pytest.raises(ServiceError):
            ServiceConfig(total_headroom=1.5)
        with pytest.raises(ServiceError):
            # equal split 0.97/64 falls below the default floor
            ServiceConfig(n_shards=64)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ServiceError):
            build_service(CFG, ServiceConfig(strategy="MAGIC"))


class TestBoundedEntryShedder:
    def test_cap_bounds_armed_alpha(self):
        shedder = BoundedEntryShedder(random.Random(0), alpha_cap=0.25)
        shedder.set_allowance(10.0, 100.0)  # wants to drop 90%
        assert shedder.requested_alpha == pytest.approx(0.9)
        assert shedder.alpha == pytest.approx(0.25)

    def test_cap_recalculates_current_alpha(self):
        shedder = BoundedEntryShedder(random.Random(0))
        shedder.set_allowance(10.0, 100.0)
        assert shedder.alpha == pytest.approx(0.9)
        shedder.cap(0.5)
        assert shedder.alpha == pytest.approx(0.5)
        shedder.cap(1.0)  # lifting the cap restores the controller's wish
        assert shedder.alpha == pytest.approx(0.9)

    def test_invalid_cap_rejected(self):
        from repro.errors import SheddingError
        with pytest.raises(SheddingError):
            BoundedEntryShedder(alpha_cap=1.5)
        with pytest.raises(SheddingError):
            BoundedEntryShedder().cap(-0.1)

    def test_loss_bound_respected_end_to_end(self):
        """With a global drop SLA the fleet's realized loss stays near it."""
        cfg = ExperimentConfig(duration=80.0, seed=7)
        svc = ServiceConfig(mode="independent", loss_bound=0.05,
                            per_source_rate=60.0)
        res = run_service_experiment(cfg, svc)
        qos = res.aggregate_qos()
        assert qos.loss_ratio <= 0.05 + 0.03  # SLA plus sampling noise
