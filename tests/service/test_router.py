"""Stream router: stable hashing, explicit pinning, partitioning."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.service import (
    ExplicitRouter,
    HashRouter,
    RoutingTable,
    StreamRouter,
    make_router,
)


def arrivals_for(sources, per_source=3):
    """A time-ordered arrival list cycling through ``sources``."""
    out = []
    t = 0.0
    for i in range(per_source):
        for s in sources:
            out.append((t, (0.5, 0.5, 0.5, 0.5), s))
            t += 0.1
    return out


class TestHashRouter:
    def test_mapping_is_crc32_mod_shards(self):
        router = HashRouter(4)
        for name in ("s0", "alpha", "sensor-17", ""):
            assert router.shard_of(name) == zlib.crc32(
                name.encode("utf-8")) % 4

    def test_mapping_stable_across_instances(self):
        a, b = HashRouter(8), HashRouter(8)
        names = [f"src{i}" for i in range(50)]
        assert [a.shard_of(n) for n in names] == [b.shard_of(n) for n in names]

    def test_all_sources_of_one_name_land_on_one_shard(self):
        router = HashRouter(3)
        parts = router.partition(arrivals_for(["a", "b", "c", "d"], 5))
        for part in parts:
            # within one shard, every source's tuples are all there or none
            by_source = {}
            for __, __, s in part:
                by_source[s] = by_source.get(s, 0) + 1
            for count in by_source.values():
                assert count == 5

    def test_partition_preserves_time_order(self):
        router = HashRouter(2)
        parts = router.partition(arrivals_for(["a", "b", "c"], 10))
        for part in parts:
            times = [t for t, __, __ in part]
            assert times == sorted(times)

    def test_single_shard_gets_everything(self):
        router = HashRouter(1)
        arr = arrivals_for(["x", "y"], 4)
        assert router.partition(arr) == [arr]

    def test_invalid_shard_count(self):
        with pytest.raises(ServiceError):
            HashRouter(0)


class TestExplicitRouter:
    def test_pinning_followed(self):
        router = ExplicitRouter({"hot": 0, "a": 1, "b": 1})
        assert router.n_shards == 2
        assert router.shard_of("hot") == 0
        assert router.shard_of("b") == 1

    def test_unknown_source_rejected(self):
        router = ExplicitRouter({"a": 0})
        with pytest.raises(ServiceError):
            router.shard_of("mystery")

    def test_unknown_source_rejected_during_partition(self):
        router = ExplicitRouter({"a": 0})
        with pytest.raises(ServiceError):
            router.partition([(0.0, (1,), "mystery")])

    def test_assignment_outside_shard_range_rejected(self):
        with pytest.raises(ServiceError):
            ExplicitRouter({"a": 5}, n_shards=2)

    def test_empty_assignment_rejected(self):
        with pytest.raises(ServiceError):
            ExplicitRouter({})

    def test_explicit_n_shards_allows_spares(self):
        router = ExplicitRouter({"a": 0}, n_shards=4)
        parts = router.partition(arrivals_for(["a"], 2))
        assert [len(p) for p in parts] == [2, 0, 0, 0]


class TestMakeRouter:
    def test_specs(self):
        assert isinstance(make_router("hash", 3), HashRouter)
        explicit = make_router("explicit", 2, {"a": 0, "b": 1})
        assert isinstance(explicit, ExplicitRouter)

    def test_explicit_without_table_rejected(self):
        with pytest.raises(ServiceError):
            make_router("explicit", 2)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ServiceError):
            make_router("range", 2)


SOURCE_NAMES = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=12)


class TestRoutingTableInvariants:
    """Property-style invariants the migration machinery relies on."""

    @settings(max_examples=50, deadline=None)
    @given(sources=st.lists(SOURCE_NAMES, min_size=1, max_size=20),
           n_shards=st.integers(min_value=1, max_value=9))
    def test_hash_routing_stable_under_rebuild(self, sources, n_shards):
        # A shard-count-preserving rebuild (fresh table, or snapshot
        # round-trip) maps every never-pinned source identically.
        a = RoutingTable(n_shards)
        before = [a.shard_of(s) for s in sources]
        b = RoutingTable(n_shards)
        c = RoutingTable.from_snapshot(a.snapshot())
        assert [b.shard_of(s) for s in sources] == before
        assert [c.shard_of(s) for s in sources] == before

    @settings(max_examples=50, deadline=None)
    @given(pins=st.dictionaries(SOURCE_NAMES,
                                st.integers(min_value=0, max_value=5),
                                min_size=1, max_size=10),
           n_shards=st.integers(min_value=6, max_value=9))
    def test_explicit_pins_always_win(self, pins, n_shards):
        table = RoutingTable(n_shards, pins=pins)
        for source, shard in pins.items():
            assert table.shard_of(source) == shard
            assert table.entry_of(source).pinned

    @settings(max_examples=50, deadline=None)
    @given(moves=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]),
                  st.integers(min_value=0, max_value=3)),
        min_size=1, max_size=30))
    def test_source_epochs_strictly_monotone(self, moves):
        table = RoutingTable(4)
        last = {}
        for source, shard in moves:
            epoch = table.pin(source, shard)
            assert epoch > last.get(source, 0)
            assert epoch == table.source_epoch(source)
            last[source] = epoch
        # the global epoch counts every mutation
        assert table.epoch == len(moves)

    @settings(max_examples=50, deadline=None)
    @given(moves=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]),
                  st.integers(min_value=0, max_value=3)),
        min_size=1, max_size=30))
    def test_replica_replay_converges(self, moves):
        primary = RoutingTable(4)
        replica = RoutingTable(4)
        for source, shard in moves:
            epoch = primary.pin(source, shard)
            replica.apply_route(source, shard, epoch)
        assert replica.snapshot() == primary.snapshot()

    def test_apply_route_rejects_stale_epoch(self):
        table = RoutingTable(2)
        table.apply_route("s", 1, epoch=3)
        with pytest.raises(ServiceError):
            table.apply_route("s", 0, epoch=3)     # replayed twice
        with pytest.raises(ServiceError):
            table.apply_route("s", 0, epoch=2)     # out of order
        table.apply_route("s", 0, epoch=4)
        assert table.shard_of("s") == 0

    def test_migrate_validates_current_shard(self):
        table = RoutingTable(3)
        current = table.shard_of("x")
        other = (current + 1) % 3
        with pytest.raises(ServiceError):
            table.migrate("x", from_shard=other, to_shard=current)
        with pytest.raises(ServiceError):
            table.migrate("x", from_shard=current, to_shard=current)
        epoch = table.migrate("x", from_shard=current, to_shard=other)
        assert epoch == 1
        assert table.shard_of("x") == other

    def test_unpin_restores_hash_route(self):
        table = RoutingTable(4)
        hashed = table.shard_of("s")
        table.pin("s", (hashed + 1) % 4)
        table.unpin("s")
        assert table.shard_of("s") == hashed
        assert table.source_epoch("s") == 2


class TestRangeCheck:
    def test_out_of_range_mapping_caught(self):
        class BadRouter(StreamRouter):
            def shard_of(self, source):
                return self.n_shards  # off by one

        with pytest.raises(ServiceError):
            BadRouter(2).partition([(0.0, (1,), "s")])
