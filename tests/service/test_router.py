"""Stream router: stable hashing, explicit pinning, partitioning."""

import zlib

import pytest

from repro.errors import ServiceError
from repro.service import ExplicitRouter, HashRouter, StreamRouter, make_router


def arrivals_for(sources, per_source=3):
    """A time-ordered arrival list cycling through ``sources``."""
    out = []
    t = 0.0
    for i in range(per_source):
        for s in sources:
            out.append((t, (0.5, 0.5, 0.5, 0.5), s))
            t += 0.1
    return out


class TestHashRouter:
    def test_mapping_is_crc32_mod_shards(self):
        router = HashRouter(4)
        for name in ("s0", "alpha", "sensor-17", ""):
            assert router.shard_of(name) == zlib.crc32(
                name.encode("utf-8")) % 4

    def test_mapping_stable_across_instances(self):
        a, b = HashRouter(8), HashRouter(8)
        names = [f"src{i}" for i in range(50)]
        assert [a.shard_of(n) for n in names] == [b.shard_of(n) for n in names]

    def test_all_sources_of_one_name_land_on_one_shard(self):
        router = HashRouter(3)
        parts = router.partition(arrivals_for(["a", "b", "c", "d"], 5))
        for part in parts:
            # within one shard, every source's tuples are all there or none
            by_source = {}
            for __, __, s in part:
                by_source[s] = by_source.get(s, 0) + 1
            for count in by_source.values():
                assert count == 5

    def test_partition_preserves_time_order(self):
        router = HashRouter(2)
        parts = router.partition(arrivals_for(["a", "b", "c"], 10))
        for part in parts:
            times = [t for t, __, __ in part]
            assert times == sorted(times)

    def test_single_shard_gets_everything(self):
        router = HashRouter(1)
        arr = arrivals_for(["x", "y"], 4)
        assert router.partition(arr) == [arr]

    def test_invalid_shard_count(self):
        with pytest.raises(ServiceError):
            HashRouter(0)


class TestExplicitRouter:
    def test_pinning_followed(self):
        router = ExplicitRouter({"hot": 0, "a": 1, "b": 1})
        assert router.n_shards == 2
        assert router.shard_of("hot") == 0
        assert router.shard_of("b") == 1

    def test_unknown_source_rejected(self):
        router = ExplicitRouter({"a": 0})
        with pytest.raises(ServiceError):
            router.shard_of("mystery")

    def test_unknown_source_rejected_during_partition(self):
        router = ExplicitRouter({"a": 0})
        with pytest.raises(ServiceError):
            router.partition([(0.0, (1,), "mystery")])

    def test_assignment_outside_shard_range_rejected(self):
        with pytest.raises(ServiceError):
            ExplicitRouter({"a": 5}, n_shards=2)

    def test_empty_assignment_rejected(self):
        with pytest.raises(ServiceError):
            ExplicitRouter({})

    def test_explicit_n_shards_allows_spares(self):
        router = ExplicitRouter({"a": 0}, n_shards=4)
        parts = router.partition(arrivals_for(["a"], 2))
        assert [len(p) for p in parts] == [2, 0, 0, 0]


class TestMakeRouter:
    def test_specs(self):
        assert isinstance(make_router("hash", 3), HashRouter)
        explicit = make_router("explicit", 2, {"a": 0, "b": 1})
        assert isinstance(explicit, ExplicitRouter)

    def test_explicit_without_table_rejected(self):
        with pytest.raises(ServiceError):
            make_router("explicit", 2)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ServiceError):
            make_router("range", 2)


class TestRangeCheck:
    def test_out_of_range_mapping_caught(self):
        class BadRouter(StreamRouter):
            def shard_of(self, source):
                return self.n_shards  # off by one

        with pytest.raises(ServiceError):
            BadRouter(2).partition([(0.0, (1,), "s")])
