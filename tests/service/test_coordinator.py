"""Coordinator rebalancing: sum preservation, clamping, drop-bound SLA."""

import pytest

from repro.errors import ServiceError
from repro.metrics.recorder import PeriodRecord
from repro.service import HeadroomCoordinator
from repro.service.coordinator import _bounded_shares


class FakeShedder:
    """Records the caps the coordinator applies."""

    def __init__(self, requested_alpha):
        self.requested_alpha = requested_alpha
        self.alpha_cap = 1.0

    def cap(self, alpha_cap):
        self.alpha_cap = alpha_cap


class FakeLoop:
    period = 1.0


class FakeShard:
    """Duck-typed stand-in for EngineShard (observation + mutation points)."""

    def __init__(self, headroom, base_target=2.0, requested_alpha=0.0):
        self.headroom = headroom
        self.base_target = base_target
        self.target = base_target
        self.loop = FakeLoop()
        self._shedder = FakeShedder(requested_alpha)

    @property
    def requested_alpha(self):
        return self._shedder.requested_alpha

    @property
    def alpha_cap(self):
        return self._shedder.alpha_cap

    def set_headroom(self, h):
        self.headroom = h

    def set_target(self, t):
        self.target = t

    def cap_alpha(self, cap):
        self._shedder.cap(cap)


def mk_period(delay_estimate=1.0, queue_length=50, offered=100, cost=1 / 190):
    return PeriodRecord(
        k=0, time=1.0, target=2.0, delay_estimate=delay_estimate,
        queue_length=queue_length, cost=cost, inflow_rate=float(offered),
        outflow_rate=float(offered), offered=offered, admitted=offered,
        shed_retro=0, v=float(offered), u=float(offered), error=0.0,
        alpha=0.0,
    )


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(ServiceError):
            HeadroomCoordinator(mode="psychic")

    def test_gain_range(self):
        with pytest.raises(ServiceError):
            HeadroomCoordinator(gain=1.5)

    def test_bounds_ordering(self):
        with pytest.raises(ServiceError):
            HeadroomCoordinator(headroom_floor=0.5, headroom_ceiling=0.4)

    def test_loss_bound_range(self):
        with pytest.raises(ServiceError):
            HeadroomCoordinator(loss_bound=1.5)

    def test_shard_period_mismatch(self):
        coord = HeadroomCoordinator()
        with pytest.raises(ServiceError):
            coord.rebalance(0, [FakeShard(0.2)], [])


class TestIndependentMode:
    def test_touches_nothing(self):
        shards = [FakeShard(0.2425) for __ in range(4)]
        periods = [mk_period(delay_estimate=5.0, queue_length=500)
                   for __ in range(4)]
        coord = HeadroomCoordinator(mode="independent", gain=1.0)
        coord.rebalance(0, shards, periods)
        assert all(s.headroom == 0.2425 for s in shards)
        assert all(s.target == 2.0 for s in shards)
        assert len(coord.history) == 1


class TestHeadroomMode:
    def test_sum_preserved_and_stressed_shard_gains(self):
        shards = [FakeShard(0.2425) for __ in range(4)]
        total = sum(s.headroom for s in shards)
        periods = [mk_period(offered=300, queue_length=400)] + [
            mk_period(offered=50, queue_length=0) for __ in range(3)
        ]
        coord = HeadroomCoordinator(mode="headroom", gain=1.0)
        coord.rebalance(0, shards, periods)
        assert sum(s.headroom for s in shards) == pytest.approx(total)
        assert shards[0].headroom > 0.2425
        assert all(s.headroom < 0.2425 for s in shards[1:])

    def test_gain_zero_is_noop(self):
        shards = [FakeShard(0.2425) for __ in range(4)]
        periods = [mk_period(offered=300)] + [mk_period(offered=10)] * 3
        HeadroomCoordinator(mode="headroom", gain=0.0).rebalance(
            0, shards, periods)
        assert all(s.headroom == pytest.approx(0.2425) for s in shards)

    def test_floor_respected_under_extreme_skew(self):
        shards = [FakeShard(0.2425) for __ in range(4)]
        total = sum(s.headroom for s in shards)
        periods = [mk_period(offered=10000, queue_length=9000)] + [
            mk_period(offered=0, queue_length=0) for __ in range(3)
        ]
        coord = HeadroomCoordinator(mode="headroom", gain=1.0,
                                    headroom_floor=0.05)
        coord.rebalance(0, shards, periods)
        assert sum(s.headroom for s in shards) == pytest.approx(total)
        for s in shards[1:]:
            assert s.headroom >= 0.05 - 1e-9
        assert shards[0].headroom <= coord.headroom_ceiling + 1e-9


class TestTargetMode:
    def test_budget_preserved_and_stressed_shard_tightened(self):
        shards = [FakeShard(0.2425) for __ in range(4)]
        budget = sum(s.base_target for s in shards)
        periods = [mk_period(delay_estimate=4.0)] + [
            mk_period(delay_estimate=0.2) for __ in range(3)
        ]
        HeadroomCoordinator(mode="target", gain=0.5).rebalance(
            0, shards, periods)
        assert sum(s.target for s in shards) == pytest.approx(budget)
        # the shard running hot sheds earlier (tighter target); the slack
        # shards park the freed budget
        assert shards[0].target < 2.0
        assert all(s.target > 2.0 for s in shards[1:])

    def test_floor_respected(self):
        shards = [FakeShard(0.2425) for __ in range(4)]
        periods = [mk_period(delay_estimate=1000.0)] + [
            mk_period(delay_estimate=0.0) for __ in range(3)
        ]
        coord = HeadroomCoordinator(mode="target", gain=1.0,
                                    target_floor_fraction=0.25)
        coord.rebalance(0, shards, periods)
        assert shards[0].target >= 0.25 * 2.0 - 1e-9

    def test_balanced_fleet_unchanged(self):
        shards = [FakeShard(0.2425) for __ in range(4)]
        periods = [mk_period(delay_estimate=1.5) for __ in range(4)]
        HeadroomCoordinator(mode="target", gain=1.0).rebalance(
            0, shards, periods)
        assert all(s.target == pytest.approx(2.0) for s in shards)


class TestDropBoundReconciliation:
    def test_caps_scaled_when_fleet_exceeds_sla(self):
        # both shards want to drop 40% of their inflow; the SLA allows 20%
        shards = [FakeShard(0.2425, requested_alpha=0.4) for __ in range(2)]
        periods = [mk_period(offered=100) for __ in range(2)]
        coord = HeadroomCoordinator(mode="independent", loss_bound=0.2)
        coord.rebalance(0, shards, periods)
        for s in shards:
            assert s.alpha_cap == pytest.approx(0.2)
        # expected fleet drop now meets the bound exactly
        expected = sum(s.alpha_cap * 100 for s in shards)
        assert expected == pytest.approx(0.2 * 200)

    def test_caps_lifted_inside_sla(self):
        shards = [FakeShard(0.2425, requested_alpha=0.05) for __ in range(2)]
        for s in shards:
            s.cap_alpha(0.1)  # stale cap from an earlier period
        periods = [mk_period(offered=100) for __ in range(2)]
        HeadroomCoordinator(mode="independent", loss_bound=0.2).rebalance(
            0, shards, periods)
        assert all(s.alpha_cap == 1.0 for s in shards)

    def test_zero_inflow_is_noop(self):
        shards = [FakeShard(0.2425, requested_alpha=0.9)]
        periods = [mk_period(offered=0)]
        HeadroomCoordinator(mode="independent", loss_bound=0.0).rebalance(
            0, shards, periods)
        assert shards[0].alpha_cap == 1.0


class TestBoundedShares:
    def test_identity_when_feasible(self):
        shares = [0.3, 0.4, 0.27]
        out = _bounded_shares(shares, 0.02, 0.97, sum(shares))
        assert out == pytest.approx(shares)

    def test_clamps_and_preserves_sum(self):
        shares = [0.9, 0.05, 0.02]
        out = _bounded_shares(shares, 0.1, 0.5, sum(shares))
        assert sum(out) == pytest.approx(sum(shares))
        assert all(0.1 - 1e-9 <= x <= 0.5 + 1e-9 for x in out)

    def test_infeasible_rejected(self):
        with pytest.raises(ServiceError):
            _bounded_shares([0.5, 0.5], 0.4, 0.45, 1.0)
