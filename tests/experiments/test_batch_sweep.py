"""The vectorized grid kernel agrees with the scalar engine path.

Small-grid integration tests for ``repro.experiments.batch_sweep``: the
batch lanes must reproduce the scalar ControlLoop's QoS on every supported
strategy, the cross-check must actually bite when results are wrong, and
the record path must hand back ControlLoop-shaped per-period signals.
"""

import dataclasses

import pytest

from repro.dsms.batch import HAVE_NUMPY
from repro.errors import ExperimentError
from repro.experiments import (
    BATCH_STRATEGIES,
    GridPoint,
    QUICK_CONFIG,
    cross_check_grid,
    run_batch_grid,
    scalar_reference,
)
from repro.metrics.qos import QosMetrics

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="needs repro[fast]")


def small_grid():
    """Two periods x two strategies on the quick config (120 s runs)."""
    return [
        GridPoint(config=QUICK_CONFIG.scaled(period=t), strategy=s,
                  key=f"{s}/T={t}")
        for t in (0.5, 1.0)
        for s in ("CTRL", "BASELINE")
    ]


def test_grid_point_rejects_unknown_strategy():
    with pytest.raises(ExperimentError):
        GridPoint(config=QUICK_CONFIG, strategy="FIFO")


def test_grid_point_target_resolution():
    p = GridPoint(config=QUICK_CONFIG)
    assert p.resolved_target == QUICK_CONFIG.target
    assert GridPoint(config=QUICK_CONFIG, target=3.5).resolved_target == 3.5


def test_batch_grid_matches_scalar_engine_within_tolerance():
    points = small_grid()
    results = run_batch_grid(points)
    assert len(results) == len(points)
    reports = cross_check_grid(points, results)  # raises on >1% divergence
    assert all(r.ok for r in reports)
    for point, res in zip(points, results):
        assert res.point is point
        assert res.offered.sum() == res.qos.offered
        # conservation: everything offered is admitted or shed
        assert res.admitted.sum() == res.qos.offered - res.qos.shed
        assert res.served.sum() >= res.qos.delivered
        assert (res.queue >= 0).all()


def test_all_batch_strategies_run_and_shed_under_overload():
    points = [GridPoint(config=QUICK_CONFIG, strategy=s, key=s)
              for s in BATCH_STRATEGIES]
    results = run_batch_grid(points)
    for res in results:
        # the web workload offers ~1.2x capacity: every policy must shed
        assert res.qos.offered > 0
        assert 0.0 < res.qos.loss_ratio < 1.0
        assert res.qos.delivered > 0


def test_cross_check_raises_on_divergent_results():
    points = small_grid()[:1]
    results = run_batch_grid(points)
    bogus_qos = QosMetrics(
        accumulated_violation=results[0].qos.accumulated_violation * 2 + 50,
        delayed_tuples=results[0].qos.delayed_tuples,
        max_overshoot=results[0].qos.max_overshoot,
        delivered=results[0].qos.delivered,
        shed=results[0].qos.shed,
        offered=results[0].qos.offered,
        mean_delay=results[0].qos.mean_delay,
    )
    tampered = [dataclasses.replace(results[0], qos=bogus_qos)]
    with pytest.raises(ExperimentError, match="cross-check failed"):
        cross_check_grid(points, tampered)


def test_keep_record_builds_control_loop_shaped_record():
    point = GridPoint(config=QUICK_CONFIG, strategy="CTRL",
                      keep_record=True, key="recorded")
    bare = GridPoint(config=QUICK_CONFIG, strategy="CTRL", key="bare")
    recorded, plain = run_batch_grid([point, bare])
    assert plain.record is None
    record = recorded.record
    assert record is not None
    assert len(record.periods) == QUICK_CONFIG.n_periods
    assert record.offered_total == recorded.qos.offered
    # the record's own QoS accounting agrees with the lane QoS
    scalar_qos, _ = scalar_reference(point)
    assert recorded.qos.loss_ratio == pytest.approx(
        scalar_qos.loss_ratio, abs=0.01)
    for pr in record.periods[:5]:
        assert pr.admitted <= pr.offered
        assert pr.queue_length >= 0
        assert pr.cost > 0


def test_results_keyed_independently_of_shared_inputs():
    """Points sharing a workload must not bleed state into each other."""
    lone = run_batch_grid([GridPoint(config=QUICK_CONFIG, key="solo")])[0]
    paired = run_batch_grid([
        GridPoint(config=QUICK_CONFIG, key="a"),
        GridPoint(config=QUICK_CONFIG, strategy="AURORA", key="b"),
    ])
    assert paired[0].qos == lone.qos


@pytest.mark.parametrize("kind,beta,use_trace", [
    ("web", 1.0, True),
    ("pareto", 1.5, True),
    ("web", 1.0, False),
])
def test_analytic_continuation_pins_to_scalar_reference(kind, beta,
                                                        use_trace):
    """The vectorized schedule continuation is the scalar loop, exactly.

    Same completion *count* (the tuple clock must not gain or lose a
    tick) and the same instants to float dust, reconstructed from the
    same saturated-engine starting state on real workloads.
    """
    import numpy as np

    from repro.dsms import make_engine
    from repro.experiments.batch_sweep import (
        _analytic_continuation,
        _build_schedule,
        _point_inputs,
        _reference_continuation,
    )

    config = dataclasses.replace(QUICK_CONFIG, use_cost_trace=use_trace)
    point = GridPoint(config=config, workload_kind=kind, beta=beta)
    __, cost_trace, arrivals = _point_inputs(point)
    schedule = _build_schedule(config, cost_trace, arrivals)
    P = schedule.prefix_periods
    assert P < config.n_periods, "workload never saturated the server"

    # rebuild the event-exact prefix to recover the head-tuple progress
    # the continuation starts from
    T, h, cyc = config.period, config.headroom, config.control_overhead
    mult = (cost_trace.as_multiplier(config.base_cost)
            if cost_trace is not None else None)
    engine = make_engine("fluid", cost=config.base_cost, headroom=h,
                         cost_multiplier=mult)
    it = iter(arrivals)
    pending = next(it, None)
    for k in range(P):
        boundary = (k + 1) * T
        while pending is not None and pending[0] < boundary:
            t = pending[0]
            if t > engine.now:
                engine.run_until(t)
            engine.submit(max(t, k * T, engine.now))
            pending = next(it, None)
        engine.run_until(max(boundary - cyc / h, engine.now))
        if cyc:
            engine.consume_cpu(cyc)
        engine.run_until(max(boundary, engine.now))
    progress = engine._progress

    cpu_ref = np.zeros(config.n_periods)
    cpu_vec = np.zeros(config.n_periods)
    ref = _reference_continuation(config, cost_trace, P, progress, cpu_ref)
    vec = _analytic_continuation(config, cost_trace, P, progress, cpu_vec)

    assert len(vec) == len(ref)
    assert len(ref) > 0
    assert np.allclose(vec, ref, rtol=0.0, atol=1e-8)
    assert np.array_equal(cpu_ref, cpu_vec)
