"""The parallel experiment fan-out: determinism, fallbacks, job specs."""

import pickle

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    Job,
    default_workers,
    execute_job,
    parallel_enabled,
    run_jobs,
    run_jobs_keyed,
)

#: short but non-trivial: the engine saturates and sheds within 30 s
CFG = ExperimentConfig(duration=30.0)


def assert_records_identical(a, b):
    """Bit-identical series (wall_seconds is informational and may differ)."""
    assert a.periods == b.periods
    assert a.departures == b.departures
    assert a.offered_total == b.offered_total
    assert a.entry_dropped_total == b.entry_dropped_total
    assert a.duration == b.duration


class TestJobSpec:
    def test_needs_exactly_one_workload_spec(self):
        with pytest.raises(ExperimentError):
            Job(strategy="CTRL", config=CFG)

    def test_rejects_unknown_estimator(self):
        with pytest.raises(ExperimentError):
            Job(strategy="CTRL", config=CFG, workload_kind="web",
                estimator="nope")

    def test_seed_override(self):
        job = Job(strategy="CTRL", config=CFG, workload_kind="web", seed=7)
        assert job.resolved_config().seed == 7
        assert job.config.seed == CFG.seed  # original untouched

    def test_jobs_are_picklable(self):
        job = Job(strategy="CTRL", config=CFG, workload_kind="pareto",
                  actuator="lsrm", controller_kwargs={"anti_windup": True},
                  estimator="kalman", scheduler="round_robin:10", seed=3)
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job

    def test_labels(self):
        job = Job(strategy="CTRL", config=CFG, workload_kind="web", seed=9)
        assert "CTRL" in job.label and "seed=9" in job.label
        assert Job(strategy="CTRL", config=CFG, workload_kind="web",
                   key="mine").label == "mine"


class TestDeterminism:
    @pytest.fixture(scope="class")
    def jobs(self):
        return [
            Job(strategy=name, config=CFG, workload_kind="web",
                actuator=actuator, seed=seed)
            for name, actuator, seed in (
                ("CTRL", "entry", 1),
                ("CTRL", "queue", 1),
                ("AURORA", "entry", 2),
            )
        ]

    def test_parallel_matches_serial(self, jobs):
        """The acceptance contract: same seeds => same RunRecord series."""
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=3)
        assert len(serial) == len(parallel) == len(jobs)
        for a, b in zip(serial, parallel):
            assert_records_identical(a, b)

    def test_env_var_forces_serial(self, jobs, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert not parallel_enabled()
        disabled = run_jobs(jobs, workers=3)
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        assert parallel_enabled()
        reference = [execute_job(j) for j in jobs]
        for a, b in zip(disabled, reference):
            assert_records_identical(a, b)

    def test_repeated_execution_is_stable(self, jobs):
        a = execute_job(jobs[0])
        b = execute_job(jobs[0])
        assert_records_identical(a, b)

    def test_different_seeds_differ(self):
        base = Job(strategy="CTRL", config=CFG, workload_kind="web", seed=1)
        other = Job(strategy="CTRL", config=CFG, workload_kind="web", seed=2)
        ra, rb = run_jobs([base, other], workers=1)
        assert ra.periods != rb.periods


class TestFallbacks:
    def test_empty_job_list(self):
        assert run_jobs([]) == []

    def test_unpicklable_job_runs_serially(self):
        # a closure-based strategy cannot cross a process boundary; the
        # runner must quietly execute it in-process instead of crashing
        from repro.core import PolePlacementController

        unpicklable = Job(
            strategy=lambda model: PolePlacementController(model),
            config=CFG, workload_kind="web",
        )
        picklable = Job(strategy="CTRL", config=CFG, workload_kind="web")
        records = run_jobs([unpicklable, picklable], workers=2)
        assert len(records) == 2
        assert all(len(r.periods) == CFG.n_periods for r in records)

    def test_deterministic_job_error_propagates(self):
        bad = Job(strategy="CTRL", config=CFG, workload_kind="web",
                  actuator="entry", engine_kind="fluid",
                  scheduler="depth_first")  # fluid engine has no scheduler
        with pytest.raises(ExperimentError):
            run_jobs([bad, bad], workers=2)

    def test_workers_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert default_workers() == 5
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ExperimentError):
            default_workers()

    def test_keyed_execution(self):
        jobs = [Job(strategy=s, config=CFG, workload_kind="web", key=s)
                for s in ("CTRL", "BASELINE")]
        out = run_jobs_keyed(jobs, workers=1)
        assert set(out) == {"CTRL", "BASELINE"}

    def test_keyed_execution_rejects_duplicate_labels(self):
        jobs = [Job(strategy="CTRL", config=CFG, workload_kind="web",
                    key="same") for _ in range(2)]
        with pytest.raises(ExperimentError):
            run_jobs_keyed(jobs, workers=1)
