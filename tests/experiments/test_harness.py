"""Integration tests for the figure-level experiment harness.

These run shortened versions of each paper experiment and assert the
qualitative shapes the benchmarks later report in full.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    aurora_retuned,
    burstiness_sweep,
    compare_strategies,
    controller_overhead,
    make_workload,
    period_sweep,
    run_strategy,
    schedule_fn,
    setpoint_tracking,
)

#: short config shared by the harness tests (shapes hold from ~120 s on)
CFG = ExperimentConfig(duration=120.0)


class TestRunner:
    def test_unknown_strategy_rejected(self):
        wl = make_workload("web", CFG)
        with pytest.raises(ExperimentError):
            run_strategy("NOPE", wl, CFG)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ExperimentError):
            make_workload("nope", CFG)

    def test_unknown_actuator_rejected(self):
        wl = make_workload("web", CFG)
        with pytest.raises(ExperimentError):
            run_strategy("CTRL", wl, CFG, actuator="nope")

    def test_record_complete(self):
        wl = make_workload("web", CFG)
        rec = run_strategy("CTRL", wl, CFG)
        assert len(rec.periods) == CFG.n_periods
        assert rec.offered_total > 0


class TestComparison:
    @pytest.fixture(scope="class")
    def web(self):
        return compare_strategies("web", CFG)

    def test_all_strategies_present(self, web):
        assert set(web.metrics) == {"CTRL", "BASELINE", "AURORA"}

    def test_ctrl_beats_aurora_on_violations(self, web):
        """The Fig. 12 headline: CTRL has far fewer delay violations."""
        ratios = web.ratios_to_ctrl()
        assert ratios["AURORA"]["accumulated_violation"] > 2.0
        assert ratios["CTRL"]["accumulated_violation"] == 1.0

    def test_loss_is_comparable(self, web):
        """Fig. 12D: all methods pay roughly the same data loss."""
        losses = [m.loss_ratio for m in web.metrics.values()]
        assert max(losses) - min(losses) < 0.12

    def test_ctrl_transient_tracks_target(self, web):
        y = web.transient("CTRL")[20:110]
        settled = [v for v in y if v > 0]
        mean = sum(settled) / len(settled)
        assert mean == pytest.approx(CFG.target, abs=0.6)

    def test_aurora_transient_diverges_from_target(self, web):
        y_a = web.transient("AURORA")[20:110]
        y_c = web.transient("CTRL")[20:110]
        err_a = sum(abs(v - CFG.target) for v in y_a) / len(y_a)
        err_c = sum(abs(v - CFG.target) for v in y_c) / len(y_c)
        assert err_a > 1.5 * err_c


class TestRobustness:
    def test_fig16_retuned_aurora_pays_more_loss_on_web(self):
        r = aurora_retuned("web", CFG, headroom_override=0.96)
        assert r.relative_loss > 0.95  # never cheaper than CTRL
        # and it is still far worse on violations (the paper: unstable)
        assert (r.aurora_metrics.accumulated_violation
                > 2 * r.ctrl_metrics.accumulated_violation)

    def test_fig17_ctrl_dominates_across_burstiness(self):
        """CTRL beats AURORA on delay violations at every bias factor.

        (The paper's normalized flatness claim is only partially
        reproducible here — see EXPERIMENTS.md: our CTRL's violation floor
        at beta=1.5 is near zero, which inflates its own ratios.)
        """
        betas = (0.25, 1.5)
        ctrl = burstiness_sweep("CTRL", CFG, bias_factors=betas)
        aurora = burstiness_sweep("AURORA", CFG, bias_factors=betas)
        for beta in betas:
            assert (ctrl.metrics[beta].accumulated_violation
                    < aurora.metrics[beta].accumulated_violation)
            assert (ctrl.metrics[beta].max_overshoot
                    < aurora.metrics[beta].max_overshoot)


class TestSetpoint:
    def test_schedule_fn(self):
        fn = schedule_fn(((0, 1.0), (150, 3.0), (300, 5.0)))
        assert fn(0) == 1.0
        assert fn(149) == 1.0
        assert fn(150) == 3.0
        assert fn(299) == 3.0
        assert fn(350) == 5.0

    def test_schedule_validation(self):
        with pytest.raises(ExperimentError):
            schedule_fn(())
        with pytest.raises(ExperimentError):
            schedule_fn(((10, 1.0),))

    def test_fig18_ctrl_tracks_aurora_does_not(self):
        schedule = ((0, 1.0), (60, 3.0))
        res = setpoint_tracking(CFG, schedule=schedule,
                                strategies=("CTRL", "AURORA"))
        y_ctrl = res.transient("CTRL")
        y_aurora = res.transient("AURORA")
        # after the change, CTRL sits near 3 s
        tail_c = [v for v in y_ctrl[90:118] if v > 0]
        assert sum(tail_c) / len(tail_c) == pytest.approx(3.0, abs=0.8)
        # AURORA's trajectory is indifferent to the schedule
        tail_a = [v for v in y_aurora[90:118] if v > 0]
        assert abs(sum(tail_a) / len(tail_a) - 3.0) > 0.8

    def test_settling_measure(self):
        schedule = ((0, 1.0), (60, 3.0))
        res = setpoint_tracking(CFG, schedule=schedule,
                                strategies=("CTRL",))
        assert res.settling_periods("CTRL", change_at=60) < 30


class TestPeriodSweep:
    def test_fig19_shape(self):
        """Violations blow up at large T; loss is worst at tiny T."""
        sweep = period_sweep(CFG, periods=(0.03125, 0.5, 8.0))
        m = sweep.metrics
        assert m[8.0].accumulated_violation > 2 * m[0.5].accumulated_violation
        assert m[0.03125].loss_ratio > m[0.5].loss_ratio

    def test_relative_to_best_floor_is_one(self):
        sweep = period_sweep(CFG, periods=(0.5, 8.0))
        rel = sweep.relative_to_best()
        for metric in ("accumulated_violation", "loss_ratio"):
            assert min(rel[t][metric] for t in rel) == pytest.approx(1.0)


class TestOverhead:
    def test_microseconds_per_decision_is_tiny(self):
        """The paper: ~20 us on 2006 hardware; modern hosts are faster."""
        r = controller_overhead(iterations=20_000)
        assert r.microseconds_per_decision < 100.0

    def test_iterations_recorded(self):
        r = controller_overhead(iterations=1000)
        assert r.iterations == 1000
        assert r.total_seconds > 0
