"""Tests for runner options: fluid engine, estimator override, CLI."""

import pytest

from repro.core import LastValueEstimator
from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, make_workload, run_strategy
from repro.experiments.__main__ import FIGURES, main

CFG = ExperimentConfig(duration=60.0)


class TestFluidEngine:
    def test_fluid_runs_and_regulates(self):
        wl = make_workload("web", CFG)
        rec = run_strategy("CTRL", wl, CFG, engine_kind="fluid")
        est = [p.delay_estimate for p in rec.periods[20:]]
        assert sum(est) / len(est) == pytest.approx(CFG.target, abs=0.7)

    def test_fluid_agrees_with_full_engine(self):
        wl = make_workload("web", CFG)
        q_fluid = run_strategy("CTRL", wl, CFG, engine_kind="fluid").qos()
        q_full = run_strategy("CTRL", wl, CFG, engine_kind="full").qos()
        assert q_fluid.loss_ratio == pytest.approx(q_full.loss_ratio, abs=0.05)
        assert q_fluid.mean_delay == pytest.approx(q_full.mean_delay,
                                                   rel=0.3, abs=0.3)

    def test_fluid_is_faster(self):
        wl = make_workload("web", CFG)
        rec_fluid = run_strategy("CTRL", wl, CFG, engine_kind="fluid")
        rec_full = run_strategy("CTRL", wl, CFG, engine_kind="full")
        assert rec_fluid.wall_seconds < rec_full.wall_seconds

    def test_fluid_rejects_queue_actuators(self):
        wl = make_workload("web", CFG)
        with pytest.raises(ExperimentError):
            run_strategy("CTRL", wl, CFG, engine_kind="fluid",
                         actuator="queue")

    def test_unknown_engine_kind(self):
        wl = make_workload("web", CFG)
        with pytest.raises(ExperimentError):
            run_strategy("CTRL", wl, CFG, engine_kind="hologram")


class TestEstimatorOverride:
    def test_factory_used(self):
        wl = make_workload("web", CFG)
        seen = []

        def factory():
            est = LastValueEstimator(CFG.base_cost)
            seen.append(est)
            return est

        run_strategy("CTRL", wl, CFG, estimator_factory=factory)
        assert len(seen) == 1


class TestCli:
    def test_all_figures_registered(self):
        expected = {"fig5", "fig6", "fig7", "fig12", "fig13", "fig14",
                    "fig15", "fig16", "fig17", "fig18", "fig19", "overhead"}
        assert set(FIGURES) == expected

    def test_cli_runs_a_cheap_figure(self, capsys):
        assert main(["fig14", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out
        assert "cost (ms)" in out

    def test_cli_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
