"""Tests for the system-identification experiments (Figs. 5-7)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, model_verification, step_response
from repro.experiments.sysid import open_loop_run
from repro.workloads import sinusoid_rate, step_rate

CFG = ExperimentConfig()


@pytest.fixture(scope="module")
def steps():
    return step_response(rates=(150.0, 200.0, 300.0), config=CFG,
                         duration=40.0, step_at=10.0)


class TestStepResponse:
    def test_below_capacity_not_saturated(self, steps):
        assert not steps[150.0].saturated
        assert max(steps[150.0].delays) < 0.5

    def test_above_capacity_saturated(self, steps):
        assert steps[200.0].saturated
        assert steps[300.0].saturated

    def test_delay_growth_rate_scales_with_excess(self, steps):
        """Δy converges to a constant proportional to fin - H/c (Fig. 5C)."""
        d200 = steps[200.0].delay_increments[-8:]
        d300 = steps[300.0].delay_increments[-8:]
        mean200 = sum(d200) / len(d200)
        mean300 = sum(d300) / len(d300)
        excess200 = 200 - 190 * 0.97
        excess300 = 300 - 190 * 0.97
        assert mean300 / mean200 == pytest.approx(excess300 / excess200,
                                                  rel=0.3)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            step_response(config=CFG, duration=10.0, step_at=20.0)


class TestModelVerification:
    def test_step_fit_recovers_configured_headroom(self):
        trace = step_rate(60, 10, low=10.0, high=300.0)
        result = model_verification(trace, CFG)
        assert result.best_headroom() == pytest.approx(0.97)

    def test_sine_fit_recovers_configured_headroom(self):
        trace = sinusoid_rate(120, 50, low=0.0, high=400.0)
        result = model_verification(trace, CFG)
        assert result.best_headroom() == pytest.approx(0.97)

    def test_wrong_headroom_has_larger_error(self):
        trace = step_rate(60, 10, low=10.0, high=300.0)
        result = model_verification(trace, CFG)
        assert result.fits[0.97].rms_error < result.fits[1.00].rms_error

    def test_measured_cost_near_nominal(self):
        trace = step_rate(50, 10, low=10.0, high=250.0)
        result = model_verification(trace, CFG)
        assert result.measured_cost == pytest.approx(1 / 190, rel=0.1)

    def test_prediction_tracks_measurement(self):
        """Eq. 2 must explain the measured delays within a small RMS."""
        trace = step_rate(60, 10, low=10.0, high=300.0)
        result = model_verification(trace, CFG)
        fit = result.fits[0.97]
        peak = max(result.measured)
        assert fit.rms_error < 0.1 * peak


class TestOpenLoopRun:
    def test_series_lengths_match_trace(self):
        trace = step_rate(30, 5, low=50.0, high=100.0)
        run = open_loop_run(trace, CFG)
        assert len(run.rates) == 30
        assert len(run.queue_at_boundary) == 30
        assert len(run.delays) == 30

    def test_underload_queue_stays_empty(self):
        trace = step_rate(20, 5, low=50.0, high=100.0)
        run = open_loop_run(trace, CFG)
        assert max(run.queue_at_boundary) < 20
