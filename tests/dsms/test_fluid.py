"""Unit tests for the fast virtual-queue engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsms import Engine, VirtualQueueEngine, identification_network
from repro.errors import SchedulingError


def feed_uniform(engine, rate, duration, start=0.0):
    for k in range(int(duration)):
        for i in range(int(rate)):
            engine.submit(start + k + i / rate, (), "in")


class TestBasics:
    def test_parameter_validation(self):
        with pytest.raises(SchedulingError):
            VirtualQueueEngine(cost=0.0)
        with pytest.raises(SchedulingError):
            VirtualQueueEngine(headroom=0.0)

    def test_out_of_order_submit_rejected(self):
        e = VirtualQueueEngine()
        e.submit(5.0)
        with pytest.raises(SchedulingError):
            e.submit(2.0)

    def test_run_backwards_rejected(self):
        e = VirtualQueueEngine()
        e.run_until(3.0)
        with pytest.raises(SchedulingError):
            e.run_until(1.0)

    def test_idle_clock_advance(self):
        e = VirtualQueueEngine()
        e.run_until(7.0)
        assert e.now == 7.0


class TestQueueingBehaviour:
    def test_underload_drains(self):
        e = VirtualQueueEngine(cost=1 / 190, headroom=0.97)
        feed_uniform(e, 100, 10)
        e.run_until(11.0)
        assert e.departed_total == 1000
        assert e.outstanding == 0

    def test_overload_integrates(self):
        e = VirtualQueueEngine(cost=1 / 190, headroom=0.97)
        feed_uniform(e, 300, 10)
        e.run_until(10.0)
        # q grows at fin - H/c per second
        expected_q = 10 * (300 - 190 * 0.97)
        assert e.outstanding == pytest.approx(expected_q, rel=0.05)

    def test_service_rate_is_h_over_c(self):
        e = VirtualQueueEngine(cost=1 / 190, headroom=0.97)
        feed_uniform(e, 400, 10)
        e.run_until(10.0)
        assert e.departed_total == pytest.approx(190 * 0.97 * 10, rel=0.02)

    def test_delays_follow_eq2(self):
        """FIFO delay of the k-th queued tuple ≈ (q ahead) * c / H."""
        e = VirtualQueueEngine(cost=1 / 100, headroom=1.0)
        for i in range(50):
            e.submit(0.0)
        e.run_until(10.0)
        deps = e.drain_departures()
        for idx, d in enumerate(deps):
            assert d.delay == pytest.approx((idx + 1) / 100, rel=1e-6)

    def test_cost_multiplier_halves_capacity(self):
        e = VirtualQueueEngine(cost=1 / 190, headroom=0.97,
                               cost_multiplier=lambda t: 2.0)
        feed_uniform(e, 400, 10)
        e.run_until(10.0)
        assert e.departed_total == pytest.approx(0.5 * 190 * 0.97 * 10, rel=0.02)

    def test_partial_service_carries_across_periods(self):
        """Serving across many small periods loses no throughput."""
        e1 = VirtualQueueEngine(cost=0.025, headroom=1.0)
        e2 = VirtualQueueEngine(cost=0.025, headroom=1.0)
        for e in (e1, e2):
            for i in range(100):
                e.submit(0.0)
        e1.run_until(2.0)
        t = 0.0
        while t < 2.0:
            t += 0.03125  # periods smaller than the service time
            e2.run_until(t)
        assert e2.departed_total == e1.departed_total

    def test_effective_cost_tracks_multiplier(self):
        e = VirtualQueueEngine(cost=0.01, cost_multiplier=lambda t: 1.0 + t)
        assert e.effective_cost(at=0.0) == pytest.approx(0.01)
        assert e.effective_cost(at=3.0) == pytest.approx(0.04)


class TestShedding:
    def test_shed_oldest_counts_loss(self):
        e = VirtualQueueEngine(cost=1.0)
        for i in range(10):
            e.submit(float(i) * 0.01)
        e.run_until(0.5)
        n = e.shed_oldest(4)
        assert n == 4
        assert e.shed_total == 4
        lost = [d for d in e.drain_departures() if d.shed]
        assert len(lost) == 4

    def test_shed_newest_keeps_head_progress(self):
        e = VirtualQueueEngine(cost=1.0)
        for i in range(5):
            e.submit(0.0)
        e.run_until(0.5)  # halfway through the first tuple
        e.shed_newest(2)
        e.run_until(1.1)
        # the head tuple finishes on schedule despite the shed
        done = [d for d in e.drain_departures() if not d.shed]
        assert len(done) == 1

    def test_shed_clamps(self):
        e = VirtualQueueEngine(cost=1.0)
        e.submit(0.0)
        e.run_until(0.1)
        assert e.shed_oldest(10) == 1
        with pytest.raises(SchedulingError):
            e.shed_oldest(-1)


class TestAgreementWithFullEngine:
    """The fluid abstraction must match the DES engine (paper Eq. 2 claim)."""

    @settings(max_examples=8, deadline=None)
    @given(rate=st.integers(min_value=50, max_value=350))
    def test_departure_counts_agree(self, rate):
        import random
        full = Engine(identification_network(), headroom=0.97)
        rng = random.Random(1)
        fluid = VirtualQueueEngine(cost=1 / 190, headroom=0.97)
        for k in range(10):
            for i in range(rate):
                t = k + i / rate
                full.submit(t, tuple(rng.random() for _ in range(4)), "src")
                fluid.submit(t)
        full.run_until(10.0)
        fluid.run_until(10.0)
        assert full.departed_total == pytest.approx(fluid.departed_total, rel=0.05, abs=20)
        assert full.outstanding == pytest.approx(fluid.outstanding, rel=0.1, abs=30)
