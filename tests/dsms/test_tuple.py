"""Unit tests for tuple lineage accounting."""

import pytest

from repro.dsms import Lineage, StreamTuple, make_source_tuple


class TestLineage:
    def test_single_reference_departure(self):
        events = []
        lin = Lineage(1.0, on_departed=lambda l, t: events.append((l, t)))
        assert lin.release(3.5)
        assert lin.departed_at == 3.5
        assert lin.delay == pytest.approx(2.5)
        assert events == [(lin, 3.5)]

    def test_fork_defers_departure(self):
        lin = Lineage(0.0)
        lin.fork(2)
        assert not lin.release(1.0)
        assert not lin.release(2.0)
        assert lin.delay is None
        assert lin.release(3.0)
        assert lin.delay == pytest.approx(3.0)

    def test_over_release_raises(self):
        lin = Lineage(0.0)
        lin.release(1.0)
        with pytest.raises(RuntimeError):
            lin.release(2.0)

    def test_negative_fork_rejected(self):
        with pytest.raises(ValueError):
            Lineage(0.0).fork(-1)

    def test_shed_flag_defaults_false(self):
        assert not Lineage(0.0).shed


class TestStreamTuple:
    def test_source_tuple_carries_arrival(self):
        t = make_source_tuple((1, 2), arrived=5.0, source="s")
        assert t.arrived == 5.0
        assert t.source == "s"
        assert t.values == (1, 2)

    def test_derive_shares_lineage(self):
        t = make_source_tuple((1,), arrived=0.0)
        d = t.derive((2,))
        assert d.lineage is t.lineage
        assert d.values == (2,)
        # deriving does not change the reference count
        assert t.lineage.refcount == 1

    def test_departure_callback_fires_once(self):
        calls = []
        t = make_source_tuple((), 0.0, on_departed=lambda l, now: calls.append(now))
        t.lineage.fork(1)
        d = t.derive(())
        t.lineage.release(1.0)
        d.lineage.release(2.0)
        assert calls == [2.0]
