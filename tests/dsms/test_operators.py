"""Unit tests for query-network operators."""

import random

import pytest

from repro.dsms import (
    AggregateOperator,
    FilterOperator,
    MapOperator,
    RandomDropOperator,
    Sink,
    UnionOperator,
    WindowJoinOperator,
    make_source_tuple,
)
from repro.errors import NetworkError


def tup(values, arrived=0.0):
    return make_source_tuple(tuple(values), arrived)


class TestFilter:
    def test_pass_and_drop(self):
        f = FilterOperator("f", 0.001, lambda v: v[0] > 0)
        assert f.apply(tup([1]), 0, 0.0) != []
        assert f.apply(tup([-1]), 0, 0.0) == []

    def test_threshold_filter_selectivity_semantics(self):
        f = FilterOperator.threshold("f", 0.001, selectivity=0.3)
        assert f.apply(tup([0.29]), 0, 0.0) != []
        assert f.apply(tup([0.31]), 0, 0.0) == []

    def test_threshold_validation(self):
        with pytest.raises(NetworkError):
            FilterOperator.threshold("f", 0.001, selectivity=1.5)

    def test_observed_selectivity(self):
        f = FilterOperator.threshold("f", 0.001, selectivity=0.5)
        rng = random.Random(3)
        for _ in range(2000):
            out = f.apply(tup([rng.random()]), 0, 0.0)
            f.record(len(out))
        assert f.selectivity == pytest.approx(0.5, abs=0.05)

    def test_negative_cost_rejected(self):
        with pytest.raises(NetworkError):
            MapOperator("m", -1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(NetworkError):
            MapOperator("", 0.0)


class TestMapUnion:
    def test_identity_map(self):
        m = MapOperator("m", 0.001)
        t = tup([1, 2])
        assert m.apply(t, 0, 0.0) == [t]

    def test_transforming_map_preserves_lineage(self):
        m = MapOperator("m", 0.001, fn=lambda v: (v[0] * 2,))
        t = tup([3])
        out = m.apply(t, 0, 0.0)
        assert out[0].values == (6,)
        assert out[0].lineage is t.lineage

    def test_union_passthrough_any_port(self):
        u = UnionOperator("u", 0.001)
        t = tup([1])
        assert u.apply(t, 0, 0.0) == [t]
        assert u.apply(t, 7, 0.0) == [t]


class TestRandomDrop:
    def test_zero_probability_passes_all(self):
        d = RandomDropOperator("d", rng=random.Random(0))
        for i in range(100):
            assert d.apply(tup([i]), 0, 0.0) != []
        assert d.dropped == 0

    def test_full_probability_drops_all(self):
        d = RandomDropOperator("d", drop_probability=1.0, rng=random.Random(0))
        t = tup([1])
        assert d.apply(t, 0, 0.0) == []
        assert d.dropped == 1
        assert t.lineage.shed

    def test_probability_validation(self):
        d = RandomDropOperator("d")
        with pytest.raises(NetworkError):
            d.drop_probability = 1.2

    def test_statistical_drop_rate(self):
        d = RandomDropOperator("d", drop_probability=0.3, rng=random.Random(11))
        n = 5000
        for i in range(n):
            d.apply(tup([i]), 0, 0.0)
        assert d.dropped / n == pytest.approx(0.3, abs=0.03)

    def test_reset_clears_dropped(self):
        d = RandomDropOperator("d", drop_probability=1.0, rng=random.Random(0))
        d.apply(tup([1]), 0, 0.0)
        d.reset()
        assert d.dropped == 0


class TestWindowJoin:
    def make_join(self, window=10.0, by_time=True):
        return WindowJoinOperator("j", 0.001, window,
                                  key=lambda v: v[0], window_in_time=by_time)

    def test_match_across_ports(self):
        j = self.make_join()
        assert j.apply(tup([1, "left"]), 0, 0.0) == []
        out = j.apply(tup([1, "right"]), 1, 1.0)
        assert len(out) == 1
        assert out[0].values == (1, "right", 1, "left")

    def test_no_match_for_different_keys(self):
        j = self.make_join()
        j.apply(tup([1]), 0, 0.0)
        assert j.apply(tup([2]), 1, 1.0) == []

    def test_time_window_eviction(self):
        j = self.make_join(window=5.0)
        j.apply(tup([1]), 0, 0.0)
        # at t=10 the stored tuple is older than the 5s window
        assert j.apply(tup([1]), 1, 10.0) == []

    def test_count_window_eviction(self):
        j = self.make_join(window=2, by_time=False)
        for key in (1, 2, 3):
            j.apply(tup([key]), 0, float(key))
        # window keeps only the 2 most recent left tuples (keys 2 and 3)
        assert j.apply(tup([1]), 1, 4.0) == []
        assert len(j.apply(tup([3]), 1, 4.0)) == 1

    def test_multiple_matches(self):
        j = self.make_join()
        j.apply(tup([1, "a"]), 0, 0.0)
        j.apply(tup([1, "b"]), 0, 0.5)
        out = j.apply(tup([1, "probe"]), 1, 1.0)
        assert len(out) == 2

    def test_bad_port_raises(self):
        with pytest.raises(NetworkError):
            self.make_join().apply(tup([1]), 2, 0.0)

    def test_invalid_window(self):
        with pytest.raises(NetworkError):
            self.make_join(window=0.0)

    def test_reset_clears_windows(self):
        j = self.make_join()
        j.apply(tup([1]), 0, 0.0)
        j.reset()
        assert j.apply(tup([1]), 1, 0.5) == []


class TestAggregate:
    def make_agg(self, window=1.0):
        return AggregateOperator("a", 0.001, window,
                                 fn=lambda rows: (sum(v[0] for v in rows),))

    def test_emits_after_window(self):
        a = self.make_agg(window=1.0)
        t1, t2 = tup([1], 0.0), tup([2], 0.1)
        assert a.apply(t1, 0, 0.0) == []
        assert a.apply(t2, 0, 0.5) == []
        out = a.on_time(1.1)
        assert len(out) == 1
        ts, total = out[0].values
        assert total == 3

    def test_carrier_reference_held_and_transferred(self):
        a = self.make_agg(window=1.0)
        t1 = tup([1], 0.0)
        a.apply(t1, 0, 0.0)
        assert t1.lineage.refcount == 2  # caller ref + held carrier ref
        t2 = tup([2], 0.1)
        a.apply(t2, 0, 0.5)
        assert t1.lineage.refcount == 1  # superseded carrier released
        out = a.on_time(2.0)
        # the emitted tuple carries t2's held reference
        assert out[0].lineage is t2.lineage
        assert t2.lineage.refcount == 2

    def test_flush_closes_open_window(self):
        a = self.make_agg(window=100.0)
        a.apply(tup([5], 0.0), 0, 0.0)
        out = a.flush(1.0)
        assert len(out) == 1
        assert out[0].values[1] == 5

    def test_on_time_before_window_end_emits_nothing(self):
        a = self.make_agg(window=1.0)
        a.apply(tup([1], 0.0), 0, 0.0)
        assert a.on_time(0.5) == []

    def test_new_window_opens_after_close(self):
        a = self.make_agg(window=1.0)
        a.apply(tup([1], 0.0), 0, 0.0)
        a.on_time(1.5)
        a.apply(tup([10], 2.0), 0, 2.0)
        out = a.on_time(3.5)
        assert out[0].values[1] == 10

    def test_invalid_window(self):
        with pytest.raises(NetworkError):
            self.make_agg(window=0.0)


class TestSink:
    def test_consumes_everything(self):
        s = Sink("out")
        assert s.apply(tup([1]), 0, 0.0) == []
        assert s.consumed == 1
        s.reset()
        assert s.consumed == 0
