"""Unit tests for operator FIFO queues."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.dsms import OperatorQueue, make_source_tuple


def _tuples(n):
    return [make_source_tuple((i,), arrived=float(i)) for i in range(n)]


class TestFifo:
    def test_fifo_order(self):
        q = OperatorQueue("q")
        for t in _tuples(5):
            q.push(t)
        popped = [q.pop()[0].values[0] for _ in range(5)]
        assert popped == [0, 1, 2, 3, 4]

    def test_port_travels_with_tuple(self):
        q = OperatorQueue("q")
        t = _tuples(1)[0]
        q.push(t, port=1)
        __, port = q.pop()
        assert port == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            OperatorQueue("q").pop()

    def test_peek_does_not_consume(self):
        q = OperatorQueue("q")
        q.push(_tuples(1)[0])
        q.peek()
        assert len(q) == 1

    def test_counters(self):
        q = OperatorQueue("q")
        for t in _tuples(3):
            q.push(t)
        q.pop()
        assert q.enqueued == 3
        assert q.dequeued == 1
        assert len(q) == 2
        assert bool(q)


class TestShedding:
    def test_shed_fraction_bounds(self):
        q = OperatorQueue("q")
        with pytest.raises(ValueError):
            q.shed_fraction(1.5, random.Random(0))
        with pytest.raises(ValueError):
            q.shed_fraction(-0.1, random.Random(0))

    def test_shed_fraction_zero_is_noop(self):
        q = OperatorQueue("q")
        for t in _tuples(10):
            q.push(t)
        assert q.shed_fraction(0.0, random.Random(0)) == []
        assert len(q) == 10

    def test_shed_fraction_all(self):
        q = OperatorQueue("q")
        for t in _tuples(10):
            q.push(t)
        victims = q.shed_fraction(1.0, random.Random(0))
        assert len(victims) == 10
        assert len(q) == 0
        assert q.shed == 10

    def test_shed_count_exact(self):
        q = OperatorQueue("q")
        for t in _tuples(10):
            q.push(t)
        victims = q.shed_count(4, random.Random(0))
        assert len(victims) == 4
        assert len(q) == 6

    def test_shed_count_clamps_to_depth(self):
        q = OperatorQueue("q")
        for t in _tuples(3):
            q.push(t)
        assert len(q.shed_count(10, random.Random(0))) == 3

    def test_shed_count_negative_rejected(self):
        with pytest.raises(ValueError):
            OperatorQueue("q").shed_count(-1, random.Random(0))

    def test_shed_preserves_fifo_of_survivors(self):
        q = OperatorQueue("q")
        for t in _tuples(20):
            q.push(t)
        q.shed_count(5, random.Random(7))
        survivors = [q.pop()[0].values[0] for _ in range(len(q))]
        assert survivors == sorted(survivors)


@given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50),
       st.integers(min_value=0, max_value=2**31))
def test_shed_count_conserves_tuples(n, k, seed):
    q = OperatorQueue("q")
    for t in _tuples(n):
        q.push(t)
    victims = q.shed_count(k, random.Random(seed))
    assert len(victims) + len(q) == n
    assert len(victims) == min(n, k)
