"""Backend equivalence: the engines behind ``make_engine`` agree.

Property-style checks driving the discrete-event :class:`Engine`, the
scalar :class:`VirtualQueueEngine`, and the span-integrating
:class:`BatchFluidEngine` with identical arrival/cost traces through the
same clocking, then asserting the shared counters (admitted / departed /
outstanding / shed) and the Eq. 11 delay estimates agree within tolerance.
The fluid pair must track each other to tuple granularity; the full
network engine — which actually executes the 14-operator plan — is held
to a looser throughput tolerance.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsms import identification_network, make_engine
from repro.dsms.batch import HAVE_NUMPY
from repro.errors import BackendError

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="needs repro[fast]")

COST = 1.0 / 190.0
HEADROOM = 0.97


def deterministic_arrivals(rates, period=1.0, seed=0):
    """Evenly spaced arrivals: ``rates[k]`` tuples inside period ``k``.

    Values carry four seeded-random fields so the full network engine's
    predicate/join operators have something to chew on; the fluid engines
    ignore them.
    """
    rng = random.Random(seed)
    out = []
    for k, n in enumerate(rates):
        for j in range(n):
            values = (rng.random(), rng.random(), rng.random(), rng.random())
            out.append((k * period + (j + 0.5) * period / n, values, "src"))
    return out


def step_multiplier(t):
    """A piecewise-constant cost variation on the 1-second grid."""
    return 1.5 if 3.0 <= t < 6.0 else 1.0


def drive(engine, arrivals, n_periods, period=1.0):
    """Feed arrivals and advance period by period, sampling the queue."""
    it = iter(arrivals)
    pending = next(it, None)
    q_series = []
    for k in range(n_periods):
        boundary = (k + 1) * period
        while pending is not None and pending[0] < boundary:
            t, values, source = pending
            engine.submit(max(t, engine.now), values, source)
            pending = next(it, None)
        engine.run_until(max(boundary, engine.now))
        q_series.append(engine.outstanding)
    return q_series


@needs_numpy
@settings(max_examples=25, deadline=None)
@given(rates=st.lists(st.integers(min_value=0, max_value=400),
                      min_size=3, max_size=12))
def test_fluid_and_batch_track_to_tuple_granularity(rates):
    """Scalar and batch fluid backends serve the same virtual queue."""
    n = len(rates)
    fluid = make_engine("fluid", cost=COST, headroom=HEADROOM,
                        cost_multiplier=step_multiplier)
    batch = make_engine("batch", cost=COST, headroom=HEADROOM,
                        cost_multiplier=step_multiplier,
                        multiplier_period=1.0)
    q_fluid = drive(fluid, deterministic_arrivals(rates), n)
    q_batch = drive(batch, deterministic_arrivals(rates), n)
    assert fluid.admitted_total == batch.admitted_total
    # the batch engine integrates fluid spans (fractional service) while
    # the scalar engine completes whole tuples: they may disagree by the
    # tuple in service, never more
    for k, (qf, qb) in enumerate(zip(q_fluid, q_batch)):
        assert abs(qf - qb) <= 2, f"queue diverged at period {k}: {qf} vs {qb}"
    assert abs(fluid.departed_total - batch.departed_total) <= 2
    assert fluid.shed_total == batch.shed_total == 0
    # Eq. 11 delay estimates built from the final queue agree accordingly
    d_fluid = (q_fluid[-1] + 1) * COST / HEADROOM
    d_batch = (q_batch[-1] + 1) * COST / HEADROOM
    assert abs(d_fluid - d_batch) <= 2 * COST / HEADROOM + 1e-12


@needs_numpy
@settings(max_examples=10, deadline=None)
@given(rates=st.lists(st.integers(min_value=0, max_value=350),
                      min_size=3, max_size=8),
       shed=st.integers(min_value=0, max_value=50))
def test_shedding_counters_match_across_fluid_backends(rates, shed):
    """shed_oldest bookkeeping is identical on both fluid backends."""
    engines = [
        make_engine("fluid", cost=COST, headroom=HEADROOM),
        make_engine("batch", cost=COST, headroom=HEADROOM),
    ]
    results = []
    for engine in engines:
        drive(engine, deterministic_arrivals(rates), len(rates))
        dropped = engine.shed_oldest(shed)
        results.append((dropped, engine.shed_total, engine.departed_total))
    (drop_f, shed_f, dep_f), (drop_b, shed_b, dep_b) = results
    assert abs(drop_f - drop_b) <= 2
    assert abs(shed_f - shed_b) <= 2
    assert abs(dep_f - dep_b) <= 4  # service granularity + shed difference


def test_full_engine_matches_fluid_throughput():
    """The network engine and the Eq. 2 fluid model see the same overload."""
    rates = [300] * 20  # ~1.6x capacity: a persistent backlog builds
    arrivals = deterministic_arrivals(rates)
    full = make_engine("full", network=identification_network(),
                       headroom=HEADROOM, rng=random.Random(7))
    fluid = make_engine("fluid", cost=COST, headroom=HEADROOM)
    q_full = drive(full, arrivals, len(rates))
    q_fluid = drive(fluid, arrivals, len(rates))
    assert full.admitted_total == fluid.admitted_total == len(arrivals)
    # the network engine's realized cost wanders around 1/capacity, so hold
    # throughput and backlog to a relative band rather than tuple equality
    assert fluid.departed_total == pytest.approx(full.departed_total, rel=0.10)
    assert q_fluid[-1] == pytest.approx(q_full[-1], rel=0.25, abs=50)
    d_full = (q_full[-1] + 1) * COST / HEADROOM
    d_fluid = (q_fluid[-1] + 1) * COST / HEADROOM
    assert d_fluid == pytest.approx(d_full, rel=0.25, abs=0.3)


@needs_numpy
def test_batch_engine_reports_late_arrivals_like_the_others():
    """All backends count clock-rewritten arrivals the same way."""
    from repro.obs import get_bus

    engines = [
        make_engine("fluid", cost=COST, headroom=HEADROOM),
        make_engine("batch", cost=COST, headroom=HEADROOM),
    ]
    for engine in engines:
        engine.submit(1.0, (), "src")
        engine.run_until(5.0)
        seen = []
        with get_bus().subscribed(seen.append, kinds=("late_arrival",)):
            engine.submit(2.0, (0.5, 0.5, 0.5, 0.5), "src")  # behind the clock
        assert engine.late_arrivals == 1
        assert len(seen) == 1
        assert seen[0].engine == type(engine).__name__


def test_make_engine_rejects_unknown_backend():
    with pytest.raises(BackendError):
        make_engine("no-such-backend")
