"""Integration tests for the discrete-event engine."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsms import (
    AggregateOperator,
    Engine,
    MapOperator,
    QueryNetwork,
    Sink,
    TopologicalScheduler,
    WindowJoinOperator,
    chain_network,
    identification_network,
)
from repro.errors import SchedulingError


def uniform_arrivals(rate, duration, seed=0, source="src", start=0.0):
    """Evenly spaced arrivals with four independent uniform value fields
    (the identification network's filters test fields 0-3)."""
    rng = random.Random(seed)
    out = []
    for k in range(int(duration)):
        for i in range(int(rate)):
            values = (rng.random(), rng.random(), rng.random(), rng.random())
            out.append((start + k + i / rate, values, source))
    return out


class TestBasicExecution:
    def test_single_tuple_through_chain(self):
        net = chain_network(3, capacity=1000.0)
        eng = Engine(net)
        eng.submit(0.0, (0.5,), "src")
        eng.run_until(1.0)
        assert eng.admitted_total == 1
        assert eng.departed_total == 1
        deps = eng.drain_departures()
        assert len(deps) == 1
        assert deps[0].delay == pytest.approx(3 * (1 / 1000.0) / 0.97 / 3, rel=0.5)

    def test_headroom_validation(self):
        net = chain_network(1)
        with pytest.raises(SchedulingError):
            Engine(net, headroom=0.0)
        with pytest.raises(SchedulingError):
            Engine(net, headroom=1.5)

    def test_unknown_source_rejected(self):
        eng = Engine(chain_network(1))
        with pytest.raises(SchedulingError):
            eng.submit(0.0, (), "nope")

    def test_out_of_order_submit_rejected(self):
        eng = Engine(chain_network(1))
        eng.submit(5.0, (0.5,), "src")
        with pytest.raises(SchedulingError):
            eng.submit(1.0, (0.5,), "src")

    def test_running_backwards_rejected(self):
        eng = Engine(chain_network(1))
        eng.run_until(5.0)
        with pytest.raises(SchedulingError):
            eng.run_until(1.0)

    def test_idle_engine_advances_clock(self):
        eng = Engine(chain_network(1))
        eng.run_until(10.0)
        assert eng.now == 10.0


class TestThroughputAndDelay:
    def test_underload_constant_small_delay(self):
        """Below capacity, all tuples finish promptly (paper Fig. 5B, 150/s)."""
        eng = Engine(identification_network(capacity=190.0), headroom=0.97)
        eng.submit_many(uniform_arrivals(150, 20))
        eng.run_until(20.0)
        deps = [d for d in eng.drain_departures() if d.arrived >= 5.0]
        delays = [d.delay for d in deps]
        assert max(delays) < 0.2
        assert eng.outstanding < 50

    def test_overload_queue_integrates(self):
        """Above capacity, the virtual queue grows linearly (Fig. 5B, 300/s)."""
        eng = Engine(identification_network(capacity=190.0), headroom=0.97)
        eng.submit_many(uniform_arrivals(300, 20))
        q_at = []
        for k in range(1, 21):
            eng.run_until(float(k))
            q_at.append(eng.outstanding)
        # expected growth ~ (300 - 190*0.97)/s
        growth = (q_at[-1] - q_at[4]) / 15.0
        assert growth == pytest.approx(300 - 190 * 0.97, rel=0.15)

    def test_capacity_matches_configuration(self):
        """Sustained service rate equals capacity * headroom."""
        eng = Engine(identification_network(capacity=190.0), headroom=0.97)
        eng.submit_many(uniform_arrivals(400, 10))
        eng.run_until(10.0)
        # warm saturated server: departures ≈ capacity * H * t
        assert eng.departed_total == pytest.approx(190 * 0.97 * 10, rel=0.1)

    def test_cost_multiplier_scales_capacity(self):
        eng = Engine(identification_network(capacity=190.0), headroom=0.97,
                     cost_multiplier=lambda t: 2.0)
        eng.submit_many(uniform_arrivals(400, 10))
        eng.run_until(10.0)
        assert eng.departed_total == pytest.approx(0.5 * 190 * 0.97 * 10, rel=0.1)

    def test_conservation_of_tuples(self):
        eng = Engine(identification_network(), headroom=0.97)
        eng.submit_many(uniform_arrivals(250, 10))
        eng.run_until(30.0)  # enough time to drain
        assert eng.departed_total == eng.admitted_total == 2500
        assert eng.outstanding == 0

    def test_measured_cost_converges_to_analytic(self):
        eng = Engine(identification_network(capacity=190.0), headroom=0.97)
        eng.submit_many(uniform_arrivals(150, 30, seed=5))
        eng.run_until(40.0)
        measured = eng.cpu_used / eng.departed_total
        assert measured == pytest.approx(1.0 / 190.0, rel=0.05)


class TestSheddingHooks:
    def test_shed_queue_fraction(self):
        eng = Engine(identification_network(), headroom=0.97, rng=random.Random(9))
        eng.submit_many(uniform_arrivals(400, 5))
        eng.run_until(5.0)
        before = eng.outstanding
        assert before > 100
        shed = eng.shed_queue_fraction("f1", 0.5)
        assert shed > 0
        assert eng.shed_total == shed
        assert eng.outstanding == before - shed

    def test_shed_marks_departures_as_lost(self):
        eng = Engine(identification_network(), headroom=0.97, rng=random.Random(9))
        eng.submit_many(uniform_arrivals(400, 3))
        eng.run_until(3.0)
        eng.drain_departures()
        eng.shed_queue_count("f1", 10)
        lost = [d for d in eng.drain_departures() if d.shed]
        assert len(lost) == 10


class TestStatefulPaths:
    def test_join_network_produces_matches(self):
        net = QueryNetwork("joins")
        net.add_source("left")
        net.add_source("right")
        net.add_operator(
            WindowJoinOperator("j", 0.0001, 100.0, key=lambda v: v[0]),
            ["left", "right"],
        )
        net.add_operator(Sink("out"), ["j"])
        eng = Engine(net)
        eng.submit(0.0, (1,), "left")
        eng.submit(0.1, (1,), "right")
        eng.run_until(1.0)
        assert net.operators["out"].consumed == 1
        assert eng.outstanding == 0

    def test_aggregate_departures_balance(self):
        net = QueryNetwork("agg")
        net.add_source("s")
        net.add_operator(
            AggregateOperator("a", 0.0001, 1.0, fn=lambda rows: (len(rows),)),
            ["s"],
        )
        net.add_operator(Sink("out"), ["a"])
        eng = Engine(net)
        for i in range(10):
            eng.submit(i * 0.3, (i,), "s")
        eng.run_until(10.0)
        eng.flush()
        assert eng.departed_total == eng.admitted_total == 10
        assert eng.outstanding == 0

    def test_topological_scheduler_also_conserves(self):
        net = identification_network()
        eng = Engine(net, scheduler=TopologicalScheduler(net))
        eng.submit_many(uniform_arrivals(100, 5))
        eng.run_until(20.0)
        assert eng.departed_total == eng.admitted_total


@settings(max_examples=20, deadline=None)
@given(rate=st.integers(min_value=10, max_value=400),
       seed=st.integers(min_value=0, max_value=1000))
def test_no_tuple_ever_lost_without_shedding(rate, seed):
    """Conservation: without shedding, admitted == departed after drain."""
    eng = Engine(identification_network(), headroom=0.97, rng=random.Random(seed))
    eng.submit_many(uniform_arrivals(rate, 5, seed=seed))
    eng.run_until(5.0 + 5.0 * rate / 100.0)  # generous drain time
    eng.run_until(eng.now + 30.0)
    assert eng.admitted_total == rate * 5
    assert eng.departed_total == eng.admitted_total
    assert eng.shed_total == 0


@settings(max_examples=15, deadline=None)
@given(rate=st.integers(min_value=200, max_value=500))
def test_delays_match_virtual_queue_model(rate):
    """Sanity for Eq. 2: overloaded delays ≈ q * c / H within a loose band."""
    eng = Engine(identification_network(capacity=190.0), headroom=0.97)
    eng.submit_many(uniform_arrivals(rate, 8))
    qs = {}
    for k in range(1, 9):
        eng.run_until(float(k))
        qs[k] = eng.outstanding
    eng.run_until(60.0)  # drain so all delays are known
    deps = eng.drain_departures()
    by_period = {}
    for d in deps:
        by_period.setdefault(int(d.arrived), []).append(d.delay)
    c_over_h = (1.0 / 190.0) / 0.97
    for k in (4, 6):
        measured = sum(by_period[k]) / len(by_period[k])
        model = qs[k] * c_over_h
        assert measured == pytest.approx(model, rel=0.35, abs=0.05)
