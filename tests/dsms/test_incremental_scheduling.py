"""Incremental scheduler bookkeeping and engine hot-path fast paths.

The schedulers keep a watcher-maintained set of non-empty queues once an
engine binds them; these tests pin that bookkeeping to the ground truth
(the actual queue contents) through dispatching, in-network shedding and
resets, and check the observable scheduling policy is unchanged against
an unbound scan-based scheduler.
"""

import logging
import random

import pytest

from repro.dsms import (
    DepthFirstScheduler,
    Engine,
    MapOperator,
    OperatorQueue,
    QueryNetwork,
    RoundRobinScheduler,
    identification_network,
    make_source_tuple,
)


def uniform_arrivals(n, rate, seed=0, fields=4):
    rng = random.Random(seed)
    out = []
    t = 0.0
    for __ in range(n):
        t += rng.expovariate(rate)
        out.append((t, tuple(rng.random() for _ in range(fields)), "src"))
    return out


def nonempty_truth(engine):
    return {name for name, q in engine.queues.items() if q}


def scheduler_view(scheduler):
    return {scheduler._order[i] for i in scheduler._nonempty}


class TestBookkeepingMirrorsQueues:
    @pytest.mark.parametrize("factory", [
        DepthFirstScheduler,
        RoundRobinScheduler,
        lambda net: RoundRobinScheduler(net, batch=7),
    ])
    def test_view_consistent_during_run(self, factory):
        net = identification_network()
        engine = Engine(net, scheduler=factory(net))
        engine.submit_many(uniform_arrivals(400, rate=400.0))
        # step in small increments, checking the incremental view each time
        for i in range(1, 40):
            engine.run_until(i * 0.05)
            assert scheduler_view(engine.scheduler) == nonempty_truth(engine)

    def test_view_consistent_under_shedding(self):
        net = identification_network()
        engine = Engine(net)
        engine.submit_many(uniform_arrivals(500, rate=2000.0))
        engine.run_until(0.05)  # build a backlog
        shed_total = 0
        for name in list(engine.queues):
            shed_total += engine.shed_queue_fraction(name, 0.5)
            assert scheduler_view(engine.scheduler) == nonempty_truth(engine)
        # shed counters stay consistent with enqueue/dequeue accounting
        for q in engine.queues.values():
            assert q.enqueued - q.dequeued - q.shed == len(q)
        assert sum(q.shed for q in engine.queues.values()) == shed_total
        # and a full drain still works off the incremental view
        engine.run_until(60.0)
        assert scheduler_view(engine.scheduler) == nonempty_truth(engine) == set()

    def test_shed_count_notifies_watcher(self):
        net = identification_network()
        engine = Engine(net)
        engine.submit_many(uniform_arrivals(200, rate=2000.0))
        engine.run_until(0.05)
        for name in list(engine.queues):
            engine.shed_queue_count(name, len(engine.queues[name]))
        assert scheduler_view(engine.scheduler) == nonempty_truth(engine)

    def test_queue_clear_notifies_watcher(self):
        q = OperatorQueue("x")
        states = []
        q.set_watcher(lambda name, nonempty: states.append(nonempty))
        q.push(make_source_tuple((1,), 0.0))
        q.clear()
        # initial sync (empty), push transition, clear transition
        assert states == [False, True, False]


class TestPolicyUnchanged:
    """Bound (incremental) and unbound (scanning) scheduling pick the same
    operators in the same order."""

    def _network(self):
        net = QueryNetwork()
        net.add_source("s")
        net.add_operator(MapOperator("a", 0.001), ["s"])
        net.add_operator(MapOperator("b", 0.001), ["a"])
        net.add_operator(MapOperator("c", 0.001), ["b"])
        return net

    @pytest.mark.parametrize("factory", [
        DepthFirstScheduler,
        RoundRobinScheduler,
        lambda net: RoundRobinScheduler(net, batch=2),
    ])
    def test_bound_matches_scanning(self, factory):
        rng = random.Random(11)
        net_a, net_b = self._network(), self._network()
        bound = factory(net_a)
        scanning = factory(net_b)
        queues_bound = {n: OperatorQueue(n) for n in net_a.operators}
        queues_scan = {n: OperatorQueue(n) for n in net_b.operators}
        bound.bind(queues_bound)  # scanning stays unbound on purpose
        for step in range(300):
            if rng.random() < 0.5:
                name = rng.choice(["a", "b", "c"])
                tup = make_source_tuple((step,), 0.0)
                queues_bound[name].push(tup)
                queues_scan[name].push(tup)
            pick_bound = bound.next_operator(queues_bound)
            pick_scan = scanning.next_operator(queues_scan)
            assert pick_bound == pick_scan
            if pick_bound is not None:
                queues_bound[pick_bound].pop()
                queues_scan[pick_scan].pop()

    def test_reset_preserves_behavior(self):
        net = self._network()
        sched = RoundRobinScheduler(net, batch=2)
        queues = {n: OperatorQueue(n) for n in net.operators}
        sched.bind(queues)
        queues["c"].push(make_source_tuple((0,), 0.0))
        assert sched.next_operator(queues) == "c"
        sched.reset()
        assert sched.next_operator(queues) == "c"

    def test_engine_end_to_end_matches_across_binding(self):
        """Same arrivals through a bound engine and a manually-scanned
        drain must process identical tuple counts per operator."""
        results = []
        for use_manual in (False, True):
            net = identification_network()
            engine = Engine(net)
            if use_manual:
                # strip the binding: forces the fallback scan path
                sched = DepthFirstScheduler(net)
                engine.scheduler = sched
                for q in engine.queues.values():
                    q.set_watcher(None)
            engine.submit_many(uniform_arrivals(300, rate=400.0, seed=3))
            engine.run_until(5.0)
            results.append({name: op.executions
                            for name, op in net.operators.items()})
        assert results[0] == results[1]


class TestLateArrivals:
    def test_counted_and_logged_once(self, caplog):
        net = identification_network()
        engine = Engine(net)
        engine.submit(1.0, (0.5, 0.5, 0.5, 0.5), "src")
        engine.run_until(2.0)
        with caplog.at_level(logging.WARNING, logger="repro.dsms"):
            engine.submit(0.5, (0.5, 0.5, 0.5, 0.5), "src")  # in the past
            engine.submit(1.0, (0.5, 0.5, 0.5, 0.5), "src")  # also late
        assert engine.late_arrivals == 2
        # logged once per run, counted every time
        assert len([r for r in caplog.records
                    if "rewriting to 'now'" in r.message]) == 1

    def test_late_arrival_events_replace_the_log_warning(self, caplog):
        from repro.obs import get_bus

        net = identification_network()
        engine = Engine(net)
        engine.submit(1.0, (0.5, 0.5, 0.5, 0.5), "src")
        engine.run_until(2.0)
        seen = []
        with caplog.at_level(logging.WARNING, logger="repro.dsms"), \
                get_bus().subscribed(seen.append, kinds=("late_arrival",)):
            engine.submit(0.5, (0.5, 0.5, 0.5, 0.5), "src")
            engine.submit(1.0, (0.5, 0.5, 0.5, 0.5), "src")
        # with a subscriber every occurrence is an event and nothing is logged
        assert [e.total for e in seen] == [1, 2]
        assert seen[0].clock == 2.0 and seen[0].submitted == 0.5
        assert not caplog.records

    def test_on_time_arrivals_do_not_warn(self, caplog):
        net = identification_network()
        engine = Engine(net)
        with caplog.at_level(logging.WARNING, logger="repro.dsms"):
            engine.submit(0.0, (0.5, 0.5, 0.5, 0.5), "src")
            engine.submit(1.0, (0.5, 0.5, 0.5, 0.5), "src")
        assert engine.late_arrivals == 0
        assert not caplog.records


class TestNetworkCaches:
    def test_expected_cost_tracks_selectivity_updates(self):
        net = identification_network()
        before = net.expected_cost()
        assert net.expected_cost() == before  # cached, same value
        # execute the first filter with zero emissions: selectivity drops
        op = net.operators["f1"]
        op.record(0)
        after = net.expected_cost()
        assert after < before  # cache invalidated by the selectivity move

    def test_topological_order_cached_and_invalidated(self):
        net = QueryNetwork()
        net.add_source("s")
        net.add_operator(MapOperator("a", 0.001), ["s"])
        first = net.topological_order()
        assert net.topological_order() == first
        first.append("tampered")  # caller copies are isolated
        assert net.topological_order() == ["a"]
        net.add_operator(MapOperator("b", 0.001), ["a"])
        assert net.topological_order() == ["a", "b"]

    def test_explicit_selectivities_bypass_cache(self):
        net = identification_network()
        cached = net.expected_cost()
        overridden = net.expected_cost({"f1": 0.0})
        assert overridden < cached
        assert net.expected_cost() == cached
