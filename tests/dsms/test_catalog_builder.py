"""Unit tests for the statistics catalog and prebuilt networks."""

import random

import pytest

from repro.dsms import (
    Catalog,
    Engine,
    chain_network,
    expected_identification_cost,
    identification_network,
    monitoring_network,
)
from repro.errors import NetworkError


def feed(engine, rate, duration, source="src", fields=4, start=0.0, seed=0):
    rng = random.Random(seed)
    for k in range(int(duration)):
        for i in range(int(rate)):
            engine.submit(start + k + i / rate,
                          tuple(rng.random() for _ in range(fields)), source)


class TestCatalog:
    def test_period_differencing(self):
        eng = Engine(identification_network(), headroom=0.97)
        cat = Catalog(eng)
        feed(eng, 100, 2)
        eng.run_until(1.0)
        p1 = cat.period()
        eng.run_until(2.0)
        p2 = cat.period()
        assert p1.duration == pytest.approx(1.0, abs=0.01)
        # the arrival stamped exactly t=1.0 may land in either period
        assert p1.admitted in (100, 101)
        assert p1.admitted + p2.admitted == eng.admitted_total == 200

    def test_inflow_outflow_rates(self):
        eng = Engine(identification_network(), headroom=0.97)
        cat = Catalog(eng)
        feed(eng, 150, 1)
        eng.run_until(1.0)
        p = cat.period()
        assert p.inflow_rate == pytest.approx(150, abs=1)
        assert p.outflow_rate > 0

    def test_cost_per_tuple_none_when_idle(self):
        eng = Engine(identification_network(), headroom=0.97)
        cat = Catalog(eng)
        eng.run_until(1.0)
        assert cat.period().cost_per_tuple is None

    def test_measured_cost_close_to_analytic(self):
        eng = Engine(identification_network(capacity=190.0), headroom=0.97)
        cat = Catalog(eng)
        feed(eng, 150, 5)
        eng.run_until(6.0)
        p = cat.period()
        assert p.cost_per_tuple == pytest.approx(1 / 190, rel=0.1)

    def test_operator_stats_exposed(self):
        eng = Engine(identification_network(), headroom=0.97)
        cat = Catalog(eng)
        feed(eng, 50, 1)
        eng.run_until(2.0)
        stats = cat.operator_stats()
        assert stats["f1"].executions == 50
        assert stats["f1"].selectivity == pytest.approx(0.9, abs=0.1)


class TestBuilders:
    def test_identification_capacity_validation(self):
        with pytest.raises(NetworkError):
            identification_network(capacity=0.0)

    def test_identification_has_14_operators(self):
        assert len(identification_network()) == 14

    def test_expected_identification_cost(self):
        assert expected_identification_cost(200.0) == pytest.approx(0.005)

    def test_chain_validation(self):
        with pytest.raises(NetworkError):
            chain_network(0)
        with pytest.raises(NetworkError):
            chain_network(3, selectivity=0.0)

    def test_chain_capacity_with_filters(self):
        """A filter chain with per-field thresholds hits the target capacity."""
        net = chain_network(4, capacity=100.0, selectivity=0.8)
        eng = Engine(net, headroom=1.0)
        feed(eng, 300, 10, fields=4)
        eng.run_until(10.0)
        assert eng.departed_total == pytest.approx(1000, rel=0.08)

    def test_monitoring_network_runs_end_to_end(self):
        net = monitoring_network(capacity=500.0)
        eng = Engine(net, headroom=0.97)
        rng = random.Random(2)
        arrivals = []
        for k in range(5):
            for i in range(50):
                t = k + i / 50
                arrivals.append((t, (rng.random(), rng.randrange(10)), "flows"))
            arrivals.append((k + 0.5, (0.0, rng.randrange(10)), "alerts"))
        arrivals.sort(key=lambda a: a[0])
        eng.submit_many(arrivals)
        eng.run_until(10.0)
        eng.flush()
        assert eng.departed_total == eng.admitted_total
        stats_out = net.operators["stats_out"]
        assert stats_out.consumed > 0
