"""Unit tests for operator schedulers."""

import random

import pytest

from repro.dsms import (
    DepthFirstScheduler,
    Engine,
    MapOperator,
    OperatorQueue,
    QueryNetwork,
    RoundRobinScheduler,
    TopologicalScheduler,
    identification_network,
    make_source_tuple,
)
from repro.errors import SchedulingError


def three_op_net():
    net = QueryNetwork()
    net.add_source("s")
    net.add_operator(MapOperator("a", 0.001), ["s"])
    net.add_operator(MapOperator("b", 0.001), ["a"])
    net.add_operator(MapOperator("c", 0.001), ["b"])
    return net


def queues_for(net, depths):
    queues = {name: OperatorQueue(name) for name in net.operators}
    for name, depth in depths.items():
        for i in range(depth):
            queues[name].push(make_source_tuple((i,), 0.0))
    return queues


class TestRoundRobin:
    def test_batch_validation(self):
        with pytest.raises(SchedulingError):
            RoundRobinScheduler(three_op_net(), batch=0)

    def test_drain_per_visit_by_default(self):
        net = three_op_net()
        sched = RoundRobinScheduler(net)
        queues = queues_for(net, {"a": 3, "b": 2})
        picks = []
        for _ in range(5):
            name = sched.next_operator(queues)
            picks.append(name)
            queues[name].pop()
        # drains all of 'a' before moving to 'b'
        assert picks == ["a", "a", "a", "b", "b"]

    def test_finite_batch_rotates(self):
        net = three_op_net()
        sched = RoundRobinScheduler(net, batch=1)
        queues = queues_for(net, {"a": 2, "b": 2})
        picks = []
        for _ in range(4):
            name = sched.next_operator(queues)
            picks.append(name)
            queues[name].pop()
        assert picks == ["a", "b", "a", "b"]

    def test_empty_queues_return_none(self):
        net = three_op_net()
        sched = RoundRobinScheduler(net)
        assert sched.next_operator(queues_for(net, {})) is None

    def test_reset(self):
        net = three_op_net()
        sched = RoundRobinScheduler(net, batch=2)
        queues = queues_for(net, {"c": 1})
        assert sched.next_operator(queues) == "c"
        sched.reset()
        assert sched.next_operator(queues) == "c"


class TestDepthFirst:
    def test_most_downstream_first(self):
        net = three_op_net()
        sched = DepthFirstScheduler(net)
        queues = queues_for(net, {"a": 1, "c": 1})
        assert sched.next_operator(queues) == "c"

    def test_alias_kept(self):
        assert TopologicalScheduler is DepthFirstScheduler

    def test_empty_returns_none(self):
        net = three_op_net()
        assert DepthFirstScheduler(net).next_operator(queues_for(net, {})) is None


class TestSchedulerEquivalence:
    """The paper conjectures (Section 5.2) that the virtual-queue model holds
    for any scheduler without tuple priorities: throughput must agree."""

    def _run(self, scheduler_factory, rate=300, duration=10):
        net = identification_network()
        eng = Engine(net, headroom=0.97, scheduler=scheduler_factory(net))
        rng = random.Random(5)
        for k in range(duration):
            for i in range(rate):
                eng.submit(k + i / rate, tuple(rng.random() for _ in range(4)), "src")
        eng.run_until(float(duration))
        return eng

    def test_round_robin_matches_depth_first_throughput(self):
        rr = self._run(RoundRobinScheduler)
        df = self._run(DepthFirstScheduler)
        assert rr.departed_total == pytest.approx(df.departed_total, rel=0.10)

    def test_round_robin_finite_batch_throughput(self):
        rr = self._run(lambda n: RoundRobinScheduler(n, batch=50))
        df = self._run(DepthFirstScheduler)
        assert rr.departed_total == pytest.approx(df.departed_total, rel=0.15)
