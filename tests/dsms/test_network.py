"""Unit tests for query-network structure and static cost analysis."""

import pytest

from repro.dsms import (
    FilterOperator,
    MapOperator,
    QueryNetwork,
    Sink,
    UnionOperator,
    WindowJoinOperator,
    identification_network,
)
from repro.errors import NetworkError


def simple_chain():
    net = QueryNetwork("chain")
    net.add_source("s")
    net.add_operator(MapOperator("a", 0.001), ["s"])
    net.add_operator(MapOperator("b", 0.002), ["a"])
    return net


class TestConstruction:
    def test_duplicate_source_rejected(self):
        net = QueryNetwork()
        net.add_source("s")
        with pytest.raises(NetworkError):
            net.add_source("s")

    def test_duplicate_operator_rejected(self):
        net = simple_chain()
        with pytest.raises(NetworkError):
            net.add_operator(MapOperator("a", 0.001), ["s"])

    def test_operator_source_name_collision(self):
        net = QueryNetwork()
        net.add_source("x")
        with pytest.raises(NetworkError):
            net.add_operator(MapOperator("x", 0.0), ["x"])
        net.add_operator(MapOperator("y", 0.0), ["x"])
        with pytest.raises(NetworkError):
            net.add_source("y")

    def test_unknown_input_rejected(self):
        net = QueryNetwork()
        net.add_source("s")
        with pytest.raises(NetworkError):
            net.add_operator(MapOperator("a", 0.0), ["nope"])

    def test_arity_enforced(self):
        net = QueryNetwork()
        net.add_source("s")
        join = WindowJoinOperator("j", 0.0, 1.0, key=lambda v: v[0])
        with pytest.raises(NetworkError):
            net.add_operator(join, ["s"])  # join needs two inputs

    def test_union_accepts_many_inputs(self):
        net = QueryNetwork()
        net.add_source("s1")
        net.add_source("s2")
        net.add_source("s3")
        net.add_operator(UnionOperator("u", 0.0), ["s1", "s2", "s3"])
        assert len(net.sources["s2"]) == 1

    def test_self_loop_rejected(self):
        net = QueryNetwork()
        net.add_source("s")
        op = MapOperator("a", 0.0)
        with pytest.raises(NetworkError):
            net.add_operator(op, ["a"])

    def test_no_inputs_rejected(self):
        net = QueryNetwork()
        u = UnionOperator("u", 0.0)
        with pytest.raises(NetworkError):
            net.add_operator(u, [])


class TestStructure:
    def test_topological_order_respects_edges(self):
        net = identification_network()
        order = net.topological_order()
        pos = {name: i for i, name in enumerate(order)}
        for up, edges in net.downstream.items():
            for down, __ in edges:
                assert pos[up] < pos[down]

    def test_entry_points(self):
        net = simple_chain()
        assert net.entry_points() == [("s", "a", 0)]

    def test_outputs(self):
        net = simple_chain()
        assert net.outputs() == ["b"]

    def test_validate_rejects_empty(self):
        with pytest.raises(NetworkError):
            QueryNetwork().validate()

    def test_validate_accepts_identification_network(self):
        identification_network().validate()

    def test_contains_and_len(self):
        net = simple_chain()
        assert "a" in net
        assert "zzz" not in net
        assert len(net) == 2


class TestCostAnalysis:
    def test_chain_expected_cost_is_sum(self):
        net = simple_chain()
        assert net.expected_cost() == pytest.approx(0.003)

    def test_filter_scales_downstream_visits(self):
        net = QueryNetwork()
        net.add_source("s")
        net.add_operator(FilterOperator.threshold("f", 0.001, 0.5), ["s"])
        net.add_operator(MapOperator("m", 0.002), ["f"])
        cost = net.expected_cost({"f": 0.5})
        assert cost == pytest.approx(0.001 + 0.5 * 0.002)

    def test_split_doubles_visits(self):
        net = QueryNetwork()
        net.add_source("s")
        net.add_operator(MapOperator("root", 0.001), ["s"])
        net.add_operator(MapOperator("left", 0.001), ["root"])
        net.add_operator(MapOperator("right", 0.001), ["root"])
        visits = net.expected_visits({})
        assert visits["left"] == pytest.approx(1.0)
        assert visits["right"] == pytest.approx(1.0)
        assert net.expected_cost({}) == pytest.approx(0.003)

    def test_identification_network_hits_target_capacity(self):
        net = identification_network(capacity=190.0)
        sels = {"f1": 0.9, "f3": 0.8, "f6": 0.7, "f11": 0.85}
        assert net.expected_cost(sels) == pytest.approx(1.0 / 190.0, rel=1e-9)

    def test_load_coefficients_decrease_downstream(self):
        """Dropping earlier saves at least as much load as dropping later."""
        net = identification_network()
        sels = {"f1": 0.9, "f3": 0.8, "f6": 0.7, "f11": 0.85}
        coeffs = net.load_coefficients(sels)
        # along the unbranched tail m12 -> m13 -> m14
        assert coeffs["m12"] >= coeffs["m13"] >= coeffs["m14"]
        # the entry point carries the full expected cost
        assert coeffs["f1"] == pytest.approx(net.expected_cost(sels))

    def test_multi_entry_source_counts_twice(self):
        net = QueryNetwork()
        net.add_source("s")
        net.add_operator(MapOperator("a", 0.001), ["s"])
        net.add_operator(MapOperator("b", 0.002), ["s"])
        # one source tuple enters both a and b
        assert net.expected_cost({}) == pytest.approx(0.003)
