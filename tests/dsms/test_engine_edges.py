"""Edge-case tests for the engine: timers, flush, multi-entry, CPU charge."""

import random

import pytest

from repro.dsms import (
    AggregateOperator,
    Engine,
    MapOperator,
    QueryNetwork,
    Sink,
    WindowJoinOperator,
    chain_network,
    identification_network,
)
from repro.errors import SchedulingError


class TestConsumeCpu:
    def test_advances_clock_by_headroom_scaled_time(self):
        eng = Engine(chain_network(1), headroom=0.5)
        eng.consume_cpu(1.0)
        assert eng.now == pytest.approx(2.0)
        assert eng.cpu_used == pytest.approx(1.0)

    def test_negative_rejected(self):
        eng = Engine(chain_network(1))
        with pytest.raises(SchedulingError):
            eng.consume_cpu(-0.1)

    def test_overhead_reduces_throughput(self):
        def run(overhead):
            eng = Engine(identification_network(), headroom=0.97,
                         rng=random.Random(0))
            rng = random.Random(1)
            for k in range(10):
                for i in range(400):
                    eng.submit(k + i / 400,
                               tuple(rng.random() for _ in range(4)), "src")
            for k in range(1, 11):
                eng.run_until(float(k))
                if overhead:
                    eng.consume_cpu(overhead)
            return eng.departed_total

        assert run(0.1) < run(0.0)


class TestMultiEntrySources:
    def test_source_feeding_two_operators_counts_once(self):
        net = QueryNetwork()
        net.add_source("s")
        net.add_operator(MapOperator("a", 0.001), ["s"])
        net.add_operator(MapOperator("b", 0.001), ["s"])
        eng = Engine(net)
        eng.submit(0.0, (1,), "s")
        eng.run_until(1.0)
        assert eng.admitted_total == 1
        assert eng.departed_total == 1  # departs when BOTH paths finish
        assert net.operators["a"].executions == 1
        assert net.operators["b"].executions == 1

    def test_source_wired_to_nothing_departs_immediately(self):
        net = QueryNetwork()
        net.add_source("used")
        net.add_source("dangling")
        net.add_operator(MapOperator("a", 0.001), ["used"])
        eng = Engine(net)
        eng.submit(0.0, (1,), "dangling")
        eng.run_until(1.0)
        assert eng.departed_total == 1
        deps = eng.drain_departures()
        assert deps[0].delay == pytest.approx(0.0, abs=1e-9)


class TestTimersAndFlush:
    def make_agg_net(self, window=1.0):
        net = QueryNetwork()
        net.add_source("s")
        net.add_operator(
            AggregateOperator("agg", 0.0001, window,
                              fn=lambda rows: (len(rows),)),
            ["s"],
        )
        net.add_operator(Sink("out"), ["agg"])
        return net

    def test_timer_fires_without_new_arrivals(self):
        net = self.make_agg_net(window=1.0)
        eng = Engine(net)
        eng.submit(0.0, (1,), "s")
        # no more arrivals; the window must still close at t = 1
        eng.run_until(5.0)
        assert net.operators["out"].consumed == 1
        assert eng.outstanding == 0

    def test_flush_closes_open_window_and_drains(self):
        net = self.make_agg_net(window=100.0)
        eng = Engine(net)
        eng.submit(0.0, (1,), "s")
        eng.run_until(2.0)
        assert eng.outstanding == 1  # held by the open window
        eng.flush()
        assert eng.outstanding == 0
        assert net.operators["out"].consumed == 1

    def test_flush_on_stateless_network_is_noop(self):
        eng = Engine(chain_network(2))
        eng.submit(0.0, (1,), "src")
        eng.run_until(1.0)
        before = eng.departed_total
        eng.flush()
        assert eng.departed_total == before


class TestJoinLineage:
    def test_join_outputs_share_probe_lineage(self):
        net = QueryNetwork()
        net.add_source("l")
        net.add_source("r")
        net.add_operator(
            WindowJoinOperator("j", 0.0001, 100.0, key=lambda v: v[0]),
            ["l", "r"],
        )
        net.add_operator(Sink("out"), ["j"])
        eng = Engine(net)
        eng.submit(0.0, (7,), "l")
        eng.submit(0.1, (7,), "r")
        eng.submit(0.2, (7,), "r")  # second probe matches the stored left
        eng.run_until(1.0)
        assert net.operators["out"].consumed == 2
        assert eng.departed_total == 3
        assert eng.outstanding == 0

    def test_window_residency_does_not_block_departure(self):
        """A tuple parked in a join window has already 'departed'."""
        net = QueryNetwork()
        net.add_source("l")
        net.add_source("r")
        net.add_operator(
            WindowJoinOperator("j", 0.0001, 1000.0, key=lambda v: v[0]),
            ["l", "r"],
        )
        eng = Engine(net)
        eng.submit(0.0, (1,), "l")
        eng.run_until(1.0)
        assert eng.departed_total == 1
        assert len(net.operators["j"].windows[0]) == 1
