"""Edge-case tests for the engine: timers, flush, multi-entry, CPU charge."""

import random

import pytest

from repro.dsms import (
    AggregateOperator,
    Engine,
    MapOperator,
    QueryNetwork,
    Sink,
    WindowJoinOperator,
    chain_network,
    identification_network,
)
from repro.errors import SchedulingError


class TestConsumeCpu:
    def test_advances_clock_by_headroom_scaled_time(self):
        eng = Engine(chain_network(1), headroom=0.5)
        eng.consume_cpu(1.0)
        assert eng.now == pytest.approx(2.0)
        assert eng.cpu_used == pytest.approx(1.0)

    def test_negative_rejected(self):
        eng = Engine(chain_network(1))
        with pytest.raises(SchedulingError):
            eng.consume_cpu(-0.1)

    def test_overhead_reduces_throughput(self):
        def run(overhead):
            eng = Engine(identification_network(), headroom=0.97,
                         rng=random.Random(0))
            rng = random.Random(1)
            for k in range(10):
                for i in range(400):
                    eng.submit(k + i / 400,
                               tuple(rng.random() for _ in range(4)), "src")
            for k in range(1, 11):
                eng.run_until(float(k))
                if overhead:
                    eng.consume_cpu(overhead)
            return eng.departed_total

        assert run(0.1) < run(0.0)


class TestMultiEntrySources:
    def test_source_feeding_two_operators_counts_once(self):
        net = QueryNetwork()
        net.add_source("s")
        net.add_operator(MapOperator("a", 0.001), ["s"])
        net.add_operator(MapOperator("b", 0.001), ["s"])
        eng = Engine(net)
        eng.submit(0.0, (1,), "s")
        eng.run_until(1.0)
        assert eng.admitted_total == 1
        assert eng.departed_total == 1  # departs when BOTH paths finish
        assert net.operators["a"].executions == 1
        assert net.operators["b"].executions == 1

    def test_source_wired_to_nothing_departs_immediately(self):
        net = QueryNetwork()
        net.add_source("used")
        net.add_source("dangling")
        net.add_operator(MapOperator("a", 0.001), ["used"])
        eng = Engine(net)
        eng.submit(0.0, (1,), "dangling")
        eng.run_until(1.0)
        assert eng.departed_total == 1
        deps = eng.drain_departures()
        assert deps[0].delay == pytest.approx(0.0, abs=1e-9)


class TestTimersAndFlush:
    def make_agg_net(self, window=1.0):
        net = QueryNetwork()
        net.add_source("s")
        net.add_operator(
            AggregateOperator("agg", 0.0001, window,
                              fn=lambda rows: (len(rows),)),
            ["s"],
        )
        net.add_operator(Sink("out"), ["agg"])
        return net

    def test_timer_fires_without_new_arrivals(self):
        net = self.make_agg_net(window=1.0)
        eng = Engine(net)
        eng.submit(0.0, (1,), "s")
        # no more arrivals; the window must still close at t = 1
        eng.run_until(5.0)
        assert net.operators["out"].consumed == 1
        assert eng.outstanding == 0

    def test_flush_closes_open_window_and_drains(self):
        net = self.make_agg_net(window=100.0)
        eng = Engine(net)
        eng.submit(0.0, (1,), "s")
        eng.run_until(2.0)
        assert eng.outstanding == 1  # held by the open window
        eng.flush()
        assert eng.outstanding == 0
        assert net.operators["out"].consumed == 1

    def test_flush_on_stateless_network_is_noop(self):
        eng = Engine(chain_network(2))
        eng.submit(0.0, (1,), "src")
        eng.run_until(1.0)
        before = eng.departed_total
        eng.flush()
        assert eng.departed_total == before


class TestQueueSheddingEdges:
    """Edge cases of the in-network shedding primitives."""

    def make_backlogged_engine(self, n=50):
        """A chain engine with ``n`` tuples parked before op0."""
        eng = Engine(chain_network(2, capacity=10.0), headroom=1.0,
                     rng=random.Random(4))
        for i in range(n):
            eng.submit(i * 0.001, (float(i),), "src")
        # deliver the buffered arrivals to op0's queue without letting the
        # (slow) operators chew through them
        eng.run_until(0.1)
        assert len(eng.queues["op0"]) > 0
        return eng

    def test_fraction_outside_unit_interval_rejected(self):
        eng = self.make_backlogged_engine()
        with pytest.raises(ValueError):
            eng.shed_queue_fraction("op0", -0.1)
        with pytest.raises(ValueError):
            eng.shed_queue_fraction("op0", 1.1)

    def test_fraction_zero_is_noop(self):
        eng = self.make_backlogged_engine()
        before = len(eng.queues["op0"])
        assert eng.shed_queue_fraction("op0", 0.0) == 0
        assert len(eng.queues["op0"]) == before

    def test_fraction_one_empties_queue(self):
        eng = self.make_backlogged_engine()
        queued = len(eng.queues["op0"])
        assert eng.shed_queue_fraction("op0", 1.0) == queued
        assert len(eng.queues["op0"]) == 0

    def test_count_larger_than_queue_clamps(self):
        eng = self.make_backlogged_engine()
        queued = len(eng.queues["op0"])
        assert eng.shed_queue_count("op0", queued + 1000) == queued
        assert len(eng.queues["op0"]) == 0

    def test_negative_count_rejected(self):
        eng = self.make_backlogged_engine()
        with pytest.raises(ValueError):
            eng.shed_queue_count("op0", -1)

    def test_empty_queue_sheds_nothing(self):
        eng = Engine(chain_network(2), rng=random.Random(4))
        assert eng.shed_queue_fraction("op0", 0.5) == 0
        assert eng.shed_queue_count("op0", 10) == 0

    def test_victims_counted_as_shed_and_released_exactly_once(self):
        eng = self.make_backlogged_engine()
        departed_before = eng.departed_total  # served during the warm-up
        eng.drain_departures()
        queued = len(eng.queues["op0"])
        victims = eng.shed_queue_count("op0", queued)
        # each victim departs exactly once, flagged as shed
        assert eng.shed_total == victims
        assert eng.departed_total == departed_before + victims
        deps = eng.drain_departures()
        assert len(deps) == victims
        assert all(d.shed for d in deps)
        # the survivors process normally afterwards; total conservation
        eng.run_until(100.0)
        assert eng.outstanding == 0
        assert eng.departed_total == eng.admitted_total
        assert eng.shed_total == victims  # no double counting later

    def test_discarded_lineage_departs_at_shed_time(self):
        eng = self.make_backlogged_engine()
        now = eng.now
        eng.shed_queue_fraction("op0", 1.0)
        deps = eng.drain_departures()
        assert deps and all(d.departed == pytest.approx(now) for d in deps)


class TestJoinLineage:
    def test_join_outputs_share_probe_lineage(self):
        net = QueryNetwork()
        net.add_source("l")
        net.add_source("r")
        net.add_operator(
            WindowJoinOperator("j", 0.0001, 100.0, key=lambda v: v[0]),
            ["l", "r"],
        )
        net.add_operator(Sink("out"), ["j"])
        eng = Engine(net)
        eng.submit(0.0, (7,), "l")
        eng.submit(0.1, (7,), "r")
        eng.submit(0.2, (7,), "r")  # second probe matches the stored left
        eng.run_until(1.0)
        assert net.operators["out"].consumed == 2
        assert eng.departed_total == 3
        assert eng.outstanding == 0

    def test_window_residency_does_not_block_departure(self):
        """A tuple parked in a join window has already 'departed'."""
        net = QueryNetwork()
        net.add_source("l")
        net.add_source("r")
        net.add_operator(
            WindowJoinOperator("j", 0.0001, 1000.0, key=lambda v: v[0]),
            ["l", "r"],
        )
        eng = Engine(net)
        eng.submit(0.0, (1,), "l")
        eng.run_until(1.0)
        assert eng.departed_total == 1
        assert len(net.operators["j"].windows[0]) == 1
