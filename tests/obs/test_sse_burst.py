"""SSE /events under tuple-trace bursts: control frames must survive.

At high sample fractions the per-tuple span stream can emit orders of
magnitude more events than the per-period control signals. The SSE
endpoint therefore excludes ``tuple_trace`` from its default subscription
(opt-in via ``?kinds=``), and each client's ``drop_oldest`` ring must
degrade by dropping its own backlog — never by wedging the emitter or
starving the period frames the dashboard lives on.
"""

import json
import urllib.request

from repro.obs import EventBus, MetricsRegistry, ObsServer
from repro.obs.bus import BoundedSubscription
from repro.obs.events import EVENT_KINDS, CompletionStats, TupleTraceCompleted
from repro.obs.serve import _Handler


def trace_event(i):
    return TupleTraceCompleted(trace={"tuple_id": f"in#{i}",
                                      "outcome": "completed",
                                      "latency": 0.5, "events": []})


class TestDefaultKinds:
    def test_tuple_trace_excluded_by_default(self):
        assert "tuple_trace" not in _Handler.SSE_DEFAULT_KINDS
        # everything else still streams, including the percentile pane feed
        assert "period" in _Handler.SSE_DEFAULT_KINDS
        assert "completions" in _Handler.SSE_DEFAULT_KINDS
        assert _Handler.SSE_DEFAULT_KINDS == set(EVENT_KINDS) - {"tuple_trace"}


class TestBoundedSubscriptionBurst:
    def test_drop_oldest_burst_drops_backlog_not_subscription(self):
        bus = EventBus()
        sub = BoundedSubscription(bus, maxlen=64, policy="drop_oldest")
        try:
            for i in range(5000):
                bus.emit(trace_event(i))
            assert sub.dropped == 5000 - 64
            # the ring holds the *newest* 64 — oldest went overboard
            first = sub.get(timeout=1.0)
            assert first.trace["tuple_id"] == "in#4936"
        finally:
            sub.close()

    def test_filtered_subscription_never_buffers_trace_bursts(self):
        bus = EventBus()
        sub = BoundedSubscription(bus, kinds=_Handler.SSE_DEFAULT_KINDS,
                                  maxlen=8, policy="drop_oldest")
        try:
            completions = CompletionStats(k=0, count=2, shed=0,
                                          delays=[0.1, 0.2], shard="shard0")
            bus.emit(completions)
            for i in range(1000):  # 125x the ring size
                bus.emit(trace_event(i))
            # the burst never entered the ring: nothing dropped, and the
            # control frame is still first in line
            assert sub.dropped == 0
            got = sub.get(timeout=1.0)
            assert got.kind == "completions"
            assert got.delays == [0.1, 0.2]
        finally:
            sub.close()


class TestSseUnderBurst:
    def _read_frames(self, resp, budget=300):
        """Yield (event, data) SSE frames, skipping keepalive comments."""
        for _ in range(budget):
            line = resp.readline().decode()
            if line.startswith("event: "):
                kind = line[len("event: "):].strip()
                data = resp.readline().decode()
                assert data.startswith("data: ")
                yield kind, json.loads(data[len("data: "):])

    def test_completions_frame_survives_trace_burst(self):
        bus = EventBus()
        server = ObsServer(bus=bus, registry=MetricsRegistry(),
                           sse_maxlen=32).start()
        try:
            resp = urllib.request.urlopen(server.url + "/events", timeout=10)
            frames = self._read_frames(resp)
            kind, _ = next(frames)
            assert kind == "hello"
            # a burst 300x the client's ring, then one control frame
            for i in range(10_000):
                bus.emit(trace_event(i))
            bus.emit(CompletionStats(k=7, count=1, shed=0, delays=[1.5],
                                     shard="shard0"))
            kind, doc = next(frames)
            assert kind == "completions", (
                "trace burst displaced the control frame")
            assert doc["k"] == 7 and doc["delays"] == [1.5]
            resp.close()
        finally:
            server.stop()

    def test_kinds_query_opts_into_tuple_trace(self):
        bus = EventBus()
        server = ObsServer(bus=bus, registry=MetricsRegistry()).start()
        try:
            resp = urllib.request.urlopen(
                server.url + "/events?kinds=tuple_trace", timeout=10)
            frames = self._read_frames(resp)
            kind, _ = next(frames)
            assert kind == "hello"
            bus.emit(CompletionStats(k=1, count=0, shed=0, delays=[]))
            bus.emit(trace_event(0))
            kind, doc = next(frames)
            # the completions event was filtered out by the opt-in list
            assert kind == "tuple_trace"
            assert doc["trace"]["tuple_id"] == "in#0"
            resp.close()
        finally:
            server.stop()
