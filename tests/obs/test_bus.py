"""Unit tests for the event bus and scoped emitters."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import EventBus, get_bus
from repro.obs.events import PeriodDecision, ShedAction


class TestSubscription:
    def test_emit_reaches_subscribers_in_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e.kind)))
        bus.subscribe(lambda e: seen.append(("b", e.kind)))
        bus.emit(ShedAction(k=1, count=5))
        assert seen == [("a", "shed"), ("b", "shed")]

    def test_kind_filter(self):
        bus = EventBus()
        shed_only = []
        everything = []
        bus.subscribe(shed_only.append, kinds=("shed",))
        bus.subscribe(everything.append)
        bus.emit(ShedAction(k=1, count=5))
        bus.emit(PeriodDecision(record=None))
        assert [e.kind for e in shed_only] == ["shed"]
        assert [e.kind for e in everything] == ["shed", "period"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        cb = bus.subscribe(seen.append)
        assert bus.unsubscribe(cb) is True
        assert bus.unsubscribe(cb) is False  # already gone
        bus.emit(ShedAction())
        assert seen == []

    def test_scoped_subscription_context(self):
        bus = EventBus()
        seen = []
        with bus.subscribed(seen.append):
            bus.emit(ShedAction())
        bus.emit(ShedAction())
        assert len(seen) == 1
        assert not bus

    def test_rejects_non_callable_and_empty_kinds(self):
        bus = EventBus()
        with pytest.raises(ObservabilityError):
            bus.subscribe("not callable")
        with pytest.raises(ObservabilityError):
            bus.subscribe(lambda e: None, kinds=())


class TestDisabledPath:
    def test_bus_is_falsy_without_subscribers(self):
        bus = EventBus()
        assert not bus
        assert len(bus) == 0
        cb = bus.subscribe(lambda e: None)
        assert bus
        assert len(bus) == 1
        bus.unsubscribe(cb)
        assert not bus

    def test_default_bus_is_a_singleton(self):
        assert get_bus() is get_bus()


class TestScopedEmitter:
    def test_stamps_shard_label(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        scoped = bus.scoped("shard3")
        scoped.emit(ShedAction(k=2, count=1))
        assert seen[0].shard == "shard3"

    def test_does_not_overwrite_explicit_shard(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.scoped("outer").emit(ShedAction(shard="inner"))
        assert seen[0].shard == "inner"

    def test_truthiness_tracks_live_bus(self):
        bus = EventBus()
        scoped = bus.scoped("s")
        assert not scoped
        # subscribing *after* the scoped view was handed out still counts
        bus.subscribe(lambda e: None)
        assert scoped

    def test_rescoping_keeps_the_underlying_bus(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.scoped("a").scoped("b").emit(ShedAction())
        assert seen[0].shard == "b"
