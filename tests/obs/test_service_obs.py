"""Integration: a sharded service observed live over the default bus."""

import re

import pytest

from repro.experiments import ExperimentConfig, run_service_experiment
from repro.obs import HealthMonitor, MetricsRegistry, get_bus, install_metrics
from repro.service import ServiceConfig

CFG = ExperimentConfig(duration=60.0, seed=7)
SVC = ServiceConfig(n_shards=2, n_sources=2, health=True, trace=True)

_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r' (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$'
)


@pytest.fixture(scope="module")
def observed():
    """One skewed service run watched live: raw events + metrics bridge."""
    bus = get_bus()
    events = []
    bridge = install_metrics(bus, MetricsRegistry())
    token = bus.subscribe(events.append)
    try:
        result = run_service_experiment(CFG, SVC)
    finally:
        bus.unsubscribe(token)
        bridge.close()
    return result, events, bridge.registry


class TestLiveObservation:
    def test_every_shard_streams_period_events(self, observed):
        result, events, _ = observed
        n = int(CFG.duration)  # period 1 s
        periods = [e for e in events if e.kind == "period"]
        by_shard = {}
        for e in periods:
            by_shard.setdefault(e.shard, []).append(e.record)
        assert set(by_shard) == set(SVC.shard_names)
        for name, records in by_shard.items():
            assert len(records) == n
            # events carried the very rows that ended up in the result
            assert records == result.shard_records[name].periods

    def test_run_lifecycle_and_fleet_events(self, observed):
        _, events, _ = observed
        kinds = {e.kind for e in events}
        assert {"run_started", "run_finished", "rebalanced",
                "headroom_changed"} <= kinds
        starts = [e for e in events if e.kind == "run_started"]
        assert sorted(e.shard for e in starts) == sorted(SVC.shard_names)
        rebalances = [e for e in events if e.kind == "rebalanced"]
        assert all(e.mode == "headroom" for e in rebalances)
        assert "headroom" in rebalances[0].detail

    def test_prometheus_exposition_of_a_real_run(self, observed):
        result, _, registry = observed
        text = registry.prometheus_text()
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert _SAMPLE_RE.match(line), f"bad exposition line: {line!r}"
        n = int(CFG.duration)
        for name in SVC.shard_names:
            assert f'repro_periods_total{{shard="{name}"}} {n}' in text
        offered = sum(
            float(m.group(1))
            for m in re.finditer(
                r'^repro_tuples_offered_total\{[^}]*\} (\S+)$',
                text, re.MULTILINE)
        )
        assert offered == sum(r.offered_total
                              for r in result.shard_records.values())


class TestResultSurfaces:
    def test_health_summary_attached(self, observed):
        result, _, _ = observed
        assert result.health is not None
        assert set(result.health) == {"healthy", "critical_open", "counts",
                                      "reports"}

    def test_trace_covers_the_measured_wall_clock(self, observed):
        result, _, _ = observed
        trace = result.trace_summary
        assert trace is not None
        assert set(trace["shards"]) == set(SVC.shard_names) | {"service"}
        assert {"engine", "dispatch", "coordinator"} <= set(trace["segments"])
        assert trace["wall_seconds"] == pytest.approx(result.wall_seconds)
        # acceptance: spans sum to within 10% of the measured wall time
        assert trace["coverage"] == pytest.approx(1.0, abs=0.1)

    def test_obs_surfaces_default_off(self):
        result = run_service_experiment(
            ExperimentConfig(duration=20.0, seed=3),
            ServiceConfig(n_shards=2, n_sources=2))
        assert result.health is None
        assert result.trace_summary is None


class TestFleetHealth:
    def test_skewed_independent_fleet_flags_imbalance(self):
        # no coordination + a hard hotspot: shard0 drowns while shard1
        # idles, so the delay-estimate spread dwarfs the common target
        cfg = ExperimentConfig(duration=60.0, seed=7)
        svc = ServiceConfig(n_shards=2, n_sources=2, mode="independent",
                            hotspot_factor=6.0)
        hm = HealthMonitor(get_bus(), imbalance_spread=0.5,
                           imbalance_patience=3)
        try:
            run_service_experiment(cfg, svc)
        finally:
            hm.close()
        hm.finalize()
        assert hm.has("shard_imbalance")
        worst = hm.reports("shard_imbalance")[0]
        assert worst.shard == "shard0"  # the hotspot lands on shard0
