"""HTTP serving: /metrics, /health, /status, SSE and the dashboard."""

import json
import urllib.error
import urllib.request

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.service_demo import run_service_experiment
from repro.obs import EventBus, MetricsRegistry, ObsServer, get_bus
from repro.obs.events import HeadroomChanged
from repro.service import ServiceConfig, build_service
from repro.service.service import StreamService

CFG = ExperimentConfig(duration=40.0)
SVC = ServiceConfig(n_shards=2, n_sources=2, backend="fluid")


def get_url(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers, resp.read().decode()


@pytest.fixture()
def server():
    bus = EventBus()
    registry = MetricsRegistry()
    registry.counter("repro_demo_total", "demo").inc(shard="main")
    srv = ObsServer(bus=bus, registry=registry,
                    status_fn=lambda: {"answer": 42})
    srv.start()
    yield srv
    srv.stop()


class TestEndpoints:
    def test_metrics_exposition(self, server):
        status, headers, body = get_url(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert '# TYPE repro_demo_total counter' in body
        assert 'repro_demo_total{shard="main"} 1' in body

    def test_health_json(self, server):
        status, headers, body = get_url(server.url + "/health")
        assert status == 200
        doc = json.loads(body)
        assert "healthy" in doc

    def test_status_document(self, server):
        server.bus.emit(HeadroomChanged(old=0.5, new=0.7, shard="shard0"))
        _, __, body = get_url(server.url + "/status")
        doc = json.loads(body)
        assert doc["events_seen"] == 1
        assert doc["event_counts"] == {"headroom_changed": 1}
        assert doc["headroom"] == {"shard0": 0.7}
        assert doc["service"] == {"answer": 42}

    def test_dashboard_html(self, server):
        status, headers, body = get_url(server.url + "/")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert "viz-root" in body
        assert "EventSource" in body  # fed by /events, not by polling

    def test_unknown_route_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get_url(server.url + "/nope")
        assert err.value.code == 404

    def test_port_is_ephemeral_by_default(self, server):
        assert server.port > 0
        assert server.url.startswith("http://127.0.0.1:")


class TestSse:
    def test_sse_streams_period_events_from_a_live_service_run(self):
        """The acceptance path: an SSE client connected to the default
        bus sees hello + period frames from a real sharded run."""
        server = ObsServer(bus=get_bus(), registry=MetricsRegistry())
        server.start()
        try:
            resp = urllib.request.urlopen(server.url + "/events", timeout=10)
            first = resp.readline().decode()
            assert first == "event: hello\n"
            run_service_experiment(CFG, SVC)
            deadline = 200  # frames, not seconds: every readline has data
            found = None
            for _ in range(deadline):
                line = resp.readline().decode()
                if line.startswith("event: period"):
                    data = resp.readline().decode()
                    assert data.startswith("data: ")
                    found = json.loads(data[len("data: "):])
                    break
            assert found is not None, "no period frame within budget"
            assert found["shard"] in SVC.shard_names
            assert found["record"]["k"] >= 0
            resp.close()
        finally:
            server.stop()

    def test_sse_client_counts(self, server):
        resp = urllib.request.urlopen(server.url + "/events", timeout=10)
        resp.readline()  # hello arrived: the handler is live
        assert server.sse_clients == 1
        resp.close()


class TestServiceServe:
    def test_stream_service_serves_while_running(self):
        """serve=True exposes /status for exactly the duration of run()."""
        svc = ServiceConfig(n_shards=2, n_sources=2, backend="fluid",
                            serve=True)
        service = build_service(CFG, svc)
        assert isinstance(service, StreamService) and service.serve
        from repro.experiments.service_demo import build_service_workload

        arrivals = build_service_workload(CFG, svc)
        statuses = []

        # probe from inside the run: the first closed period triggers one
        # synchronous GET against the in-flight server (handler threads
        # answer while the run thread waits), so the mid-run observation
        # is deterministic rather than a sleep race
        def probe_once(event):
            if not statuses:
                _, __, body = get_url(service.obs_server.url + "/status")
                statuses.append(json.loads(body))

        service.bus.subscribe(probe_once, kinds=("period",))
        try:
            service.run(arrivals, CFG.duration)
        finally:
            service.bus.unsubscribe(probe_once)
        assert service.obs_server is None, "server must stop with the run"
        assert len(statuses) == 1
        doc = statuses[0]["service"]
        assert doc["running"] is True
        assert doc["n_shards"] == 2
        assert set(doc["shards"]) == {"shard0", "shard1"}
        for shard in doc["shards"].values():
            assert 0.0 < shard["headroom"] <= 1.0
            assert shard["target"] == CFG.target
