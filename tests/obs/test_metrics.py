"""Unit tests for the metrics registry, exposition and the event bridge."""

import json
import re
import time

import pytest

from repro.errors import ObservabilityError
from repro.metrics import PeriodRecord
from repro.obs import (
    EventBus,
    JsonlSnapshotSink,
    MetricsRegistry,
    PromFileDumper,
    install_metrics,
    parse_prometheus_text,
    start_prom_dump,
)
from repro.obs.events import (
    CompletionStats,
    DrainTruncated,
    HeadroomChanged,
    IngestStats,
    LateArrival,
    MigrationCompleted,
    PeriodDecision,
    RouteChanged,
    ShardRebalanced,
    ShedAction,
)

# one exposition line: name{labels} value  (labels optional)
_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r' (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$'
)


def period(k=0, delay=1.0, target=2.0, offered=100, admitted=90, alpha=0.1,
           queue=50, shed_retro=0):
    return PeriodRecord(
        k=k, time=float(k + 1), target=target, delay_estimate=delay,
        queue_length=queue, cost=0.005, inflow_rate=admitted / 1.0,
        outflow_rate=180.0, offered=offered, admitted=admitted,
        shed_retro=shed_retro, v=180.0, u=180.0, error=target - delay,
        alpha=alpha,
    )


class TestPrimitives:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("tuples_total")
        c.inc()
        c.inc(4.0, shard="a")
        assert c.value() == 1.0
        assert c.value(shard="a") == 4.0
        with pytest.raises(ObservabilityError):
            c.inc(-1.0)

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3.5, shard="a")
        g.inc(-1.0, shard="a")
        assert g.value(shard="a") == 2.5

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("delay", buckets=(0.5, 1.0, 2.0))
        for v in (0.1, 0.7, 1.5, 9.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(11.3)
        samples = list(h.samples())
        # cumulative counts per le bound: 0.5 -> 1, 1.0 -> 2, 2.0 -> 3, +Inf -> 4
        by_le = {dict(key)["le"]: value
                 for suffix, key, value in samples if suffix == "_bucket"}
        assert by_le == {"0.5": 1.0, "1": 2.0, "2": 3.0, "+Inf": 4.0}

    def test_type_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ObservabilityError):
            reg.gauge("x_total")

    def test_same_name_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("2bad")
        with pytest.raises(ObservabilityError):
            reg.counter("ok_total").inc(**{"bad-label": "x"})


class TestExposition:
    def test_every_line_is_valid_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_tuples_total", "tuples seen").inc(7, shard="s0")
        reg.gauge("repro_alpha").set(0.25, shard="s0")
        h = reg.histogram("repro_delay_seconds", buckets=(1.0, 2.0))
        h.observe(0.5, shard="s0")
        text = reg.prometheus_text()
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                continue
            assert _SAMPLE_RE.match(line), f"bad exposition line: {line!r}"
        assert "# TYPE repro_tuples_total counter" in text
        assert "# TYPE repro_delay_seconds histogram" in text
        assert 'repro_tuples_total{shard="s0"} 7' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(1, src='we"ird\\name')
        text = reg.prometheus_text()
        assert r'src="we\"ird\\name"' in text

    def test_snapshot_is_json_able(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(2, shard="a")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        doc = json.loads(json.dumps(reg.snapshot()))
        assert doc["c_total"]["type"] == "counter"
        assert doc["h"]["values"][""]["count"] == 1


class TestJsonlSnapshotSink:
    def test_appends_labeled_lines(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        sink = JsonlSnapshotSink(tmp_path / "snaps.jsonl", reg)
        assert sink.write("after-warmup") == 0
        reg.counter("c_total").inc()
        assert sink.write() == 1
        lines = [json.loads(l) for l in
                 (tmp_path / "snaps.jsonl").read_text().splitlines()]
        assert lines[0]["label"] == "after-warmup"
        assert lines[0]["metrics"]["c_total"]["values"][""] == 1.0
        assert lines[1]["metrics"]["c_total"]["values"][""] == 2.0


class TestMetricsBridge:
    def test_period_events_fold_into_metrics(self):
        bus = EventBus()
        reg = MetricsRegistry()
        bridge = install_metrics(bus, reg)
        bus.emit(PeriodDecision(record=period(k=0, delay=1.0)))
        bus.emit(PeriodDecision(record=period(k=1, delay=3.0)))  # violation
        assert bridge.periods.value(shard="main") == 2
        assert bridge.offered.value(shard="main") == 200
        assert bridge.admitted.value(shard="main") == 180
        assert bridge.violations.value(shard="main") == 1
        assert bridge.violation_ratio("main") == 0.5
        assert bridge.delay.value(shard="main") == 3.0
        assert bridge.delay_hist.count(shard="main") == 2

    def test_shard_labels_flow_through(self):
        bus = EventBus()
        bridge = install_metrics(bus, MetricsRegistry())
        bus.scoped("s1").emit(PeriodDecision(record=period()))
        assert bridge.periods.value(shard="s1") == 1
        assert bridge.periods.value(shard="main") == 0

    def test_completions_feed_tuple_latency_histogram(self):
        bus = EventBus()
        bridge = install_metrics(bus, MetricsRegistry())
        bus.emit(CompletionStats(k=0, count=3, shed=1, delays=[0.5, 1.5]))
        bus.scoped("s1").emit(CompletionStats(k=0, count=1, shed=0,
                                              delays=[2.5]))
        assert bridge.tuple_latency.count(shard="main") == 2
        assert bridge.tuple_latency.count(shard="s1") == 1

    def test_tuple_latency_populates_without_span_sampling(self):
        """CompletionStats flows from the loop's completion accounting, so
        the latency histogram fills even with the tuple tracer off."""
        from repro.experiments import ExperimentConfig, make_workload, run_strategy

        bus = EventBus()
        bridge = install_metrics(bus, MetricsRegistry())
        cfg = ExperimentConfig(duration=20.0)
        record = run_strategy("CTRL", make_workload("web", cfg), cfg, bus=bus)
        delivered = record.qos(within_window=False).delivered
        assert delivered > 0
        assert bridge.tuple_latency.count(shard="main") == delivered

    def test_other_events(self):
        bus = EventBus()
        bridge = install_metrics(bus, MetricsRegistry())
        bus.emit(ShedAction(k=0, action="entry", count=10, alpha=0.5))
        bus.emit(ShedAction(k=0, action="retro", count=3, alpha=0.5))
        bus.emit(LateArrival(engine="Engine", total=1))
        bus.emit(DrainTruncated(leftover=42))
        bus.emit(ShardRebalanced(k=5, mode="headroom"))
        bus.emit(HeadroomChanged(old=0.4, new=0.6, shard="s0"))
        assert bridge.shed.value(shard="main", action="entry") == 10
        assert bridge.shed.value(shard="main", action="retro") == 3
        assert bridge.late.value(shard="main", engine="Engine") == 1
        assert bridge.truncations.value(shard="main") == 1
        assert bridge.rebalances.value(mode="headroom") == 1
        assert bridge.headroom.value(shard="s0") == 0.6

    def test_migration_events(self):
        bus = EventBus()
        bridge = install_metrics(bus, MetricsRegistry())
        bus.emit(RouteChanged(k=5, source="s4", from_shard=0, to_shard=3,
                              epoch=1))
        bus.scoped("shard0").emit(MigrationCompleted(
            k=5, source="s4", from_shard=0, to_shard=3, drained=120,
            leftover=0, virtual_seconds=1.75, truncated=False))
        assert bridge.migrations.value(source="s4", from_shard="0",
                                       to_shard="3") == 1
        assert bridge.migration_drain.count(shard="shard0") == 1
        assert bridge.migration_drain.sum(shard="shard0") == 1.75

    def test_ingest_drops_labeled_by_reason(self):
        bus = EventBus()
        bridge = install_metrics(bus, MetricsRegistry())
        bus.scoped("live").emit(IngestStats(k=0, accepted=90, dropped=10,
                                            malformed=2, bytes_read=4096,
                                            rate=90.0))
        assert bridge.ingest_dropped.value(shard="live",
                                           reason="capacity") == 10
        text = bridge.registry.prometheus_text()
        assert 'repro_ingest_dropped_total{shard="live",reason="capacity"} 10' \
            in text or \
            'repro_ingest_dropped_total{reason="capacity",shard="live"} 10' \
            in text

    def test_close_stops_listening(self):
        bus = EventBus()
        bridge = install_metrics(bus, MetricsRegistry())
        bridge.close()
        assert not bus
        bus.emit(PeriodDecision(record=period()))
        assert bridge.periods.value(shard="main") == 0


class TestHistogramQuantiles:
    def hist(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(1.0, 2.0, 4.0))
        return reg, h

    def test_interpolated_quantiles(self):
        __, h = self.hist()
        for v in (0.5, 0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 3.0):
            h.observe(v)
        # 8 observations: 2 in (0,1], 2 in (1,2], 4 in (2,4]
        assert h.quantile(0.25) == pytest.approx(1.0)   # rank 2 tops bucket 1
        assert h.quantile(0.5) == pytest.approx(2.0)    # rank 4 tops bucket 2
        assert h.quantile(1.0) == pytest.approx(4.0)
        assert h.quantile(0.75) == pytest.approx(3.0)   # halfway into (2,4]

    def test_quantiles_monotonic(self):
        __, h = self.hist()
        for i in range(50):
            h.observe(0.1 * (i % 40))
        q = [h.quantile(x) for x in (0.5, 0.95, 0.99)]
        assert q == sorted(q)

    def test_empty_is_nan_and_bad_q_raises(self):
        import math

        __, h = self.hist()
        assert math.isnan(h.quantile(0.5))
        with pytest.raises(ObservabilityError):
            h.quantile(1.5)

    def test_inf_rank_clamps_to_last_finite_bound(self):
        __, h = self.hist()
        h.observe(100.0)  # lands in the +Inf bucket
        assert h.quantile(0.99) == 4.0


class TestSummaryExposition:
    def test_summary_family_rendered_with_consistent_sum_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "help here", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 1.5):
            h.observe(v, shard="s0")
        text = reg.prometheus_text()
        assert "# TYPE lat_seconds histogram" in text
        assert "# TYPE lat_seconds_summary summary" in text
        for q in (0.5, 0.95, 0.99):
            assert f'quantile="{q}"' in text
        # the derived family reports the histogram's own volume, verbatim
        families = parse_prometheus_text(text)
        by_name = {}
        for name, labels, value in families["lat_seconds_summary"]["samples"]:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["lat_seconds_summary_sum"][0][1] == h.sum(shard="s0")
        assert by_name["lat_seconds_summary_count"][0][1] == h.count(shard="s0")
        assert all(lbl["shard"] == "s0"
                   for samples in by_name.values() for lbl, __ in samples)


class TestPrometheusRoundTrip:
    def test_full_registry_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs").inc(5, worker='pid1/"w\\0"')
        reg.gauge("alpha").set(0.25, shard="s1")
        h = reg.histogram("lat_seconds", buckets=(1.0, 2.0))
        h.observe(0.5, shard="s0")
        h.observe(1.5, shard="s0")
        families = parse_prometheus_text(reg.prometheus_text())

        assert families["jobs_total"]["type"] == "counter"
        assert families["jobs_total"]["help"] == "jobs"
        assert families["jobs_total"]["samples"] == [
            ("jobs_total", {"worker": 'pid1/"w\\0"'}, 5.0)]
        assert families["alpha"]["samples"] == [
            ("alpha", {"shard": "s1"}, 0.25)]

        assert families["lat_seconds"]["type"] == "histogram"
        hist_samples = {(name, labels.get("le")): value
                        for name, labels, value
                        in families["lat_seconds"]["samples"]}
        assert hist_samples[("lat_seconds_bucket", "1")] == 1.0
        assert hist_samples[("lat_seconds_bucket", "2")] == 2.0
        assert hist_samples[("lat_seconds_bucket", "+Inf")] == 2.0
        assert hist_samples[("lat_seconds_sum", None)] == 2.0
        assert hist_samples[("lat_seconds_count", None)] == 2.0
        assert families["lat_seconds_summary"]["type"] == "summary"

    def test_every_line_matches_the_exposition_grammar(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        reg.histogram("h_seconds").observe(1.0)
        for line in reg.prometheus_text().splitlines():
            if line.startswith("#"):
                continue
            assert _SAMPLE_RE.match(line), line

    def test_unparseable_line_raises(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus_text("!! not exposition !!")


class TestPromFileDumper:
    def test_mid_run_snapshots_land_before_stop(self, tmp_path):
        reg = MetricsRegistry()
        counter = reg.counter("ticks_total")
        path = tmp_path / "prom.txt"
        dumper = PromFileDumper(path, registry=reg, interval=0.05)
        dumper.start()
        try:
            assert path.exists(), "first snapshot is written at start"
            counter.inc(3)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if "ticks_total 3" in path.read_text():
                    break
                time.sleep(0.02)
            else:
                pytest.fail("mid-run snapshot never reflected the counter")
        finally:
            dumper.stop()
        assert dumper.writes >= 3  # start + periodic + final
        assert not path.with_name(path.name + ".tmp").exists()

    def test_start_prom_dump_honours_env(self, tmp_path, monkeypatch):
        path = tmp_path / "dump.txt"
        monkeypatch.delenv("REPRO_PROM_DUMP", raising=False)
        assert start_prom_dump() is None
        monkeypatch.setenv("REPRO_PROM_DUMP", str(path))
        monkeypatch.setenv("REPRO_PROM_DUMP_INTERVAL", "0.05")
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        dumper = start_prom_dump(registry=reg)
        try:
            assert dumper is not None
            assert dumper.interval == 0.05
        finally:
            dumper.stop()
        assert "c_total 1" in path.read_text()

    def test_bad_interval_rejected(self, tmp_path, monkeypatch):
        with pytest.raises(ObservabilityError):
            PromFileDumper(tmp_path / "x", interval=0.0)
        monkeypatch.setenv("REPRO_PROM_DUMP", str(tmp_path / "x"))
        monkeypatch.setenv("REPRO_PROM_DUMP_INTERVAL", "soon")
        with pytest.raises(ObservabilityError):
            start_prom_dump()
