"""Unit tests for online system identification (repro.obs.sysid)."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_strategy
from repro.metrics import PeriodRecord
from repro.obs import (
    EventBus,
    HealthMonitor,
    RlsGainEstimator,
    SysIdMonitor,
    oscillation_score,
)
from repro.obs.events import HeadroomChanged, PeriodDecision
from repro.workloads import CostTrace, constant_rate


def record(k, *, queue, delay, admitted=200, shed_retro=0, alpha=0.2,
           outflow=180.0, target=2.0):
    return PeriodRecord(
        k=k, time=float(k + 1), target=target, delay_estimate=delay,
        queue_length=queue, cost=1.0 / 180.0, inflow_rate=200.0,
        outflow_rate=outflow, offered=200, admitted=admitted,
        shed_retro=shed_retro, v=180.0, u=180.0,
        error=target - delay, alpha=alpha,
    )


def feed_plant(bus, n, *, drain=180.0, delay_rate=None, start_queue=800.0,
               admitted=200, alpha=0.2, shard=None):
    """Synthetic busy plant: queue_k = start + k*(admitted - drain).

    ``delay_rate`` sets the service rate the *delay estimate* implies
    (Eq. 11); defaulting it to ``drain`` makes measurement and plant
    agree, so the identified gain ratio is 1.
    """
    emitter = bus.scoped(shard) if shard else bus
    rate = drain if delay_rate is None else delay_rate
    q = start_queue
    for k in range(n):
        q += admitted - drain
        emitter.emit(PeriodDecision(record=record(
            k, queue=q, delay=(q + 1.0) / rate, admitted=admitted,
            alpha=alpha)))


class TestRlsGainEstimator:
    def test_identifies_a_constant_service_rate_exactly(self):
        est = RlsGainEstimator()
        for _ in range(12):
            est.update(du=200.0, dy=16.0, period=1.0)  # worked off 184/T
        assert est.service_rate == pytest.approx(184.0, rel=1e-6)

    def test_forgetting_tracks_a_rate_step(self):
        est = RlsGainEstimator(forgetting=0.7)
        for _ in range(12):
            est.update(du=200.0, dy=20.0, period=1.0)   # s = 180
        for _ in range(24):
            est.update(du=200.0, dy=110.0, period=1.0)  # s = 90
        assert est.service_rate == pytest.approx(90.0, rel=1e-3)

    def test_rescale_service_applies_known_headroom_step(self):
        est = RlsGainEstimator()
        for _ in range(10):
            est.update(du=200.0, dy=20.0, period=1.0)
        est.rescale_service(0.5)
        assert est.service_rate == pytest.approx(90.0, rel=1e-6)
        est.rescale_service(-1.0)  # non-positive factors are ignored
        assert est.service_rate == pytest.approx(90.0, rel=1e-6)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            RlsGainEstimator(forgetting=0.0)
        with pytest.raises(ValueError):
            RlsGainEstimator(forgetting=1.5)
        with pytest.raises(ValueError):
            RlsGainEstimator(delta=0.0)


class TestOscillationScore:
    def test_short_or_quiet_windows_score_zero(self):
        assert oscillation_score([1.0, -1.0, 1.0]) == 0.0
        assert oscillation_score([3.0] * 32) == 0.0

    def test_alternating_error_scores_high(self):
        xs = [1.0 if k % 2 == 0 else -1.0 for k in range(32)]
        assert oscillation_score(xs) > 0.8

    def test_hunting_outranks_a_smooth_ramp(self):
        # a ramp autocorrelates but never alternates; a limit cycle does
        # both, so the blended score must separate them
        ramp = [0.01 * k for k in range(32)]
        hunt = [1.0 if k % 2 == 0 else -1.0 for k in range(32)]
        assert oscillation_score(ramp) < oscillation_score(hunt)
        assert oscillation_score(ramp) < 0.6


class TestSysIdMonitor:
    def test_matching_plant_converges_to_ratio_one(self):
        bus = EventBus()
        mon = SysIdMonitor(bus)
        feed_plant(bus, 20, drain=180.0)
        st = mon.summary()["main"]
        assert st["converged"]
        assert st["service_rate"] == pytest.approx(180.0, rel=1e-3)
        assert st["gain_ratio"] == pytest.approx(1.0, rel=1e-3)
        assert not st["mismatch"]
        mon.close()

    def test_stale_cost_model_emits_mismatch_events(self):
        bus = EventBus()
        mon = SysIdMonitor(bus)
        seen = []
        bus.subscribe(seen.append, kinds=("model_mismatch",))
        # the delay estimate implies twice the rate the queue actually
        # drains at: the design gain is 2x off the identified gain
        feed_plant(bus, 20, drain=90.0, delay_rate=180.0, admitted=200)
        st = mon.summary()["main"]
        assert st["converged"]
        assert st["gain_ratio"] == pytest.approx(2.0, rel=1e-2)
        assert st["mismatch"]
        assert seen and seen[0].gain_ratio > 1.35
        # the effective gain margin halves with the gain ratio
        assert st["gain_margin"] == pytest.approx(
            float(mon.nominal_margins.gain_margin) / 2.0, rel=1e-2)
        mon.close()

    def test_saturated_periods_are_excluded(self):
        bus = EventBus()
        mon = SysIdMonitor(bus)
        feed_plant(bus, 20, drain=180.0, alpha=1.0)
        st = mon.summary()["main"]
        assert st["samples"] == 0
        assert st["excluded"] == 19  # all but the priming period
        assert not st["converged"]
        mon.close()

    def test_idle_queues_are_excluded(self):
        bus = EventBus()
        mon = SysIdMonitor(bus)
        # queue far below one period's worth of departures: the busy
        # guard must reject every sample rather than identify garbage
        feed_plant(bus, 20, drain=180.0, start_queue=5.0, admitted=181)
        st = mon.summary()["main"]
        assert st["samples"] == 0
        assert st["excluded"] == 19
        mon.close()

    def test_headroom_change_rescales_the_estimate(self):
        bus = EventBus()
        mon = SysIdMonitor(bus)
        feed_plant(bus, 16, drain=180.0)
        bus.emit(HeadroomChanged(old=0.9, new=0.45, shard=None))
        st = mon.summary()["main"]
        assert st["service_rate"] == pytest.approx(90.0, rel=1e-3)
        mon.close()

    def test_shards_identify_independently(self):
        bus = EventBus()
        mon = SysIdMonitor(bus)
        feed_plant(bus, 16, drain=180.0, shard="shard0")
        feed_plant(bus, 16, drain=90.0, delay_rate=90.0, shard="shard1")
        out = mon.summary()
        assert out["shard0"]["service_rate"] == pytest.approx(180.0, rel=1e-3)
        assert out["shard1"]["service_rate"] == pytest.approx(90.0, rel=1e-3)
        assert not out["shard0"]["mismatch"]
        assert not out["shard1"]["mismatch"]
        mon.close()


class TestMismatchBeatsQos:
    def test_cost_step_opens_mismatch_before_qos_violation(self):
        """The PR's acceptance scenario: a mid-run 2x cost step under a
        capped actuator. The identified-gain detector must open before
        the QoS detector — the model break is visible in (du, dy) while
        the queue is still dragging the measured delay up."""
        n = 140
        config = ExperimentConfig(duration=float(n), seed=42)
        workload = constant_rate(250.0, n)
        base = config.base_cost
        trace = CostTrace([base] * 100 + [2.0 * base] * (n - 100), 1.0)
        bus = EventBus()
        mon = SysIdMonitor(bus)
        hm = HealthMonitor(bus, qos_tolerance=2.0)
        run_strategy("CTRL", workload, config, cost_trace=trace,
                     alpha_cap=0.5, bus=bus)
        hm.finalize()
        mon.close()
        hm.close()
        kinds = [r.kind for r in hm.reports()]
        assert "model_mismatch" in kinds
        assert "qos_violation" in kinds
        # reports append in opening order
        assert kinds.index("model_mismatch") < kinds.index("qos_violation")
        mismatch = hm.reports("model_mismatch")[0]
        qos = hm.reports("qos_violation")[0]
        assert mismatch.first_k < qos.first_k
        assert mismatch.severity == "critical"
        assert mismatch.value > 1.35
