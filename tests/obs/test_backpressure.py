"""Bounded-bus backpressure: drop policies, stalled subscribers, lifecycle."""

import threading
import time

import pytest

from repro.errors import ObservabilityError
from repro.obs import BoundedSubscription, EventBus, MetricsRegistry
from repro.obs.events import RunStarted


def emit_n(bus, n, start=0):
    for i in range(start, start + n):
        bus.emit(RunStarted(period=float(i)))


class TestDropPolicies:
    def test_drop_oldest_keeps_the_freshest(self):
        bus = EventBus()
        registry = MetricsRegistry()
        sub = BoundedSubscription(bus, maxlen=3, policy="drop_oldest",
                                  name="t", registry=registry)
        emit_n(bus, 5)
        got = [sub.get(timeout=0.1).period for _ in range(3)]
        assert got == [2.0, 3.0, 4.0]
        assert sub.get(timeout=0.05) is None
        assert sub.dropped == 2
        counter = registry.get("repro_obs_dropped_total")
        assert counter.value(subscriber="t", policy="drop_oldest") == 2

    def test_drop_newest_keeps_the_earliest(self):
        bus = EventBus()
        sub = BoundedSubscription(bus, maxlen=3, policy="drop_newest",
                                  registry=MetricsRegistry())
        emit_n(bus, 5)
        got = [sub.get(timeout=0.1).period for _ in range(3)]
        assert got == [0.0, 1.0, 2.0]
        assert sub.dropped == 2

    def test_block_policy_couples_emitter_to_consumer(self):
        bus = EventBus()
        sub = BoundedSubscription(bus, maxlen=1, policy="block",
                                  registry=MetricsRegistry())
        bus.emit(RunStarted(period=0.0))  # fills the buffer
        emitted = threading.Event()

        def emit_second():
            bus.emit(RunStarted(period=1.0))
            emitted.set()

        t = threading.Thread(target=emit_second, daemon=True)
        t.start()
        assert not emitted.wait(0.15), "emitter should block on a full buffer"
        assert sub.get(timeout=1.0).period == 0.0
        assert emitted.wait(2.0), "emitter should resume once space opens"
        assert sub.get(timeout=1.0).period == 1.0
        assert sub.dropped == 0
        t.join(timeout=2.0)

    def test_invalid_arguments_rejected(self):
        bus = EventBus()
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            BoundedSubscription(bus, policy="teleport", registry=registry)
        with pytest.raises(ObservabilityError):
            BoundedSubscription(bus, maxlen=0, registry=registry)
        with pytest.raises(ObservabilityError):
            BoundedSubscription(bus, callback=42, registry=registry)


class TestStalledSubscriber:
    def test_stalled_callback_never_stalls_the_emitter(self):
        """The tentpole invariant: a wedged sink costs the emitting loop
        only an O(1) append — events beyond the buffer are dropped and
        counted, and emission latency stays flat."""
        bus = EventBus()
        release = threading.Event()
        delivered = []

        def stalled(event):
            release.wait(10.0)  # wedged until the test lets go
            delivered.append(event)

        sub = BoundedSubscription(bus, stalled, maxlen=8,
                                  policy="drop_oldest",
                                  registry=MetricsRegistry())
        start = time.perf_counter()
        emit_n(bus, 500)
        emit_wall = time.perf_counter() - start
        # 500 synchronous callbacks into a stalled sink would take >10s;
        # through the ring buffer the whole burst is a few hundred appends
        assert emit_wall < 1.0
        assert sub.dropped >= 500 - 8 - 1  # buffer + at most one in flight
        release.set()
        assert sub.flush(timeout=5.0)
        sub.close()
        assert delivered, "buffered events still reach the sink"
        assert sub.dropped + sub.delivered == 500

    def test_callback_exceptions_are_counted_not_raised(self):
        bus = EventBus()

        def bad(event):
            raise ValueError("sink bug")

        sub = BoundedSubscription(bus, bad, registry=MetricsRegistry())
        emit_n(bus, 3)  # must not raise into the emitter
        assert sub.flush(timeout=5.0)
        sub.close()
        assert sub.errors == 3


class TestLifecycle:
    def test_close_unsubscribes_and_joins(self):
        bus = EventBus()
        seen = []
        sub = BoundedSubscription(bus, seen.append,
                                  registry=MetricsRegistry())
        assert len(bus) == 1
        emit_n(bus, 4)
        sub.close()
        assert len(bus) == 0
        assert len(seen) == 4
        emit_n(bus, 1, start=99)  # after close: nothing delivered
        assert len(seen) == 4

    def test_context_manager_and_subscribe_bounded(self):
        bus = EventBus()
        with bus.subscribe_bounded(maxlen=4) as sub:
            emit_n(bus, 2)
            assert len(sub) == 2
            assert sub.get(timeout=0.1).period == 0.0
        assert len(bus) == 0

    def test_kinds_filter_applies(self):
        bus = EventBus()
        sub = BoundedSubscription(bus, kinds=("shed",),
                                  registry=MetricsRegistry())
        emit_n(bus, 3)  # run_started events: filtered out
        assert sub.get(timeout=0.05) is None
        sub.close()
