"""Sampled per-tuple lifecycle tracing: sampling, spans, audit, analysis."""

import json
import pickle
import random

from repro.core import (
    ControlLoop,
    DsmsModel,
    EntryActuator,
    Monitor,
    PolePlacementController,
)
from repro.dsms import identification_network, make_engine
from repro.experiments import ExperimentConfig, make_workload, run_strategy
from repro.obs import EventBus
from repro.obs.events import TupleTraceCompleted
from repro.obs.tuptrace import (
    TailAnalyzer,
    TraceCollector,
    TupleTracer,
    drop_audit,
)

CFG = ExperimentConfig(duration=40.0)


def traced_run(fraction=1.0, seed=0, duration=40.0, **kw):
    cfg = ExperimentConfig(duration=duration)
    workload = make_workload("web", cfg)
    tracer = TupleTracer(fraction=fraction, seed=seed,
                         max_finished=1_000_000, **kw)
    record = run_strategy("CTRL", workload, cfg, tuple_tracer=tracer)
    return tracer, record


class TestSampling:
    def test_fraction_zero_samples_nothing(self):
        tracer = TupleTracer(fraction=0.0)
        for i in range(1000):
            assert tracer.on_arrival(float(i), "in") is None
        assert tracer.offered == 1000
        assert tracer.sampled == 0

    def test_fraction_one_samples_everything(self):
        tracer = TupleTracer(fraction=1.0)
        for i in range(500):
            assert tracer.on_arrival(float(i), "in") is not None
        assert tracer.sampled == 500

    def test_partial_fraction_rate_is_close(self):
        tracer = TupleTracer(fraction=0.1, seed=3)
        n = 20_000
        hits = sum(tracer.on_arrival(float(i), "in") is not None
                   for i in range(n))
        assert 0.08 * n < hits < 0.12 * n

    def test_sampling_is_deterministic_in_sequence(self):
        picks = []
        for _ in range(2):
            tracer = TupleTracer(fraction=0.2, seed=7)
            picks.append([i for i in range(2000)
                          if tracer.on_arrival(float(i), "in") is not None])
        assert picks[0] == picks[1]

    def test_distinct_seeds_sample_distinct_sets(self):
        a = TupleTracer(fraction=0.2, seed=1)
        b = TupleTracer(fraction=0.2, seed=2)
        set_a = {i for i in range(2000)
                 if a.on_arrival(float(i), "in") is not None}
        set_b = {i for i in range(2000)
                 if b.on_arrival(float(i), "in") is not None}
        assert set_a != set_b

    def test_fraction_validation(self):
        import pytest
        with pytest.raises(ValueError):
            TupleTracer(fraction=1.5)

    def test_tuple_ids_are_source_qualified_and_unique(self):
        tracer = TupleTracer(fraction=1.0)
        ids = [tracer.on_arrival(float(i), "s0").tuple_id for i in range(10)]
        assert len(set(ids)) == 10
        assert all(i.startswith("s0#") for i in ids)


class TestSpanThreading:
    def test_full_run_traces_every_arrival(self):
        tracer, record = traced_run(fraction=1.0)
        offered = sum(p.offered for p in record.periods)
        assert tracer.offered == offered
        assert tracer.sampled == offered
        assert tracer.completed + tracer.dropped == tracer.sampled

    def test_completed_traces_have_enqueue_and_service_spans(self):
        tracer, _ = traced_run(fraction=1.0)
        done = [d for d in tracer.records() if d["outcome"] == "completed"]
        assert done
        for doc in done[:50]:
            kinds = [e["kind"] for e in doc["events"]]
            assert "enqueue" in kinds
            assert "service" in kinds or "drain" in kinds
            assert doc["latency"] is not None and doc["latency"] >= 0
            for ev in doc["events"]:
                if ev["kind"] == "service":
                    assert ev["dur"] >= 0
                    assert ev["detail"] > 0  # measured CPU cost

    def test_entry_drops_record_shedder_and_alpha(self):
        tracer, _ = traced_run(fraction=1.0)
        dropped = [d for d in tracer.records() if d["outcome"] == "dropped"]
        assert dropped, "an overloaded CTRL run must shed"
        entry = [d for d in dropped
                 if any(e["kind"] == "shed" and e["label"] == "entry"
                        for e in d["events"])]
        assert entry
        shed = next(e for e in entry[0]["events"] if e["kind"] == "shed")
        assert shed["detail"]["reason"] == "entry"
        assert "Shedder" in shed["detail"]["shedder"]
        assert 0.0 < shed["detail"]["alpha"] <= 1.0

    def test_run_is_reproducible(self):
        a, _ = traced_run(fraction=0.1, seed=5)
        b, _ = traced_run(fraction=0.1, seed=5)
        assert [d["tuple_id"] for d in a.records()] == \
               [d["tuple_id"] for d in b.records()]

    def test_unsampled_tuples_carry_no_trace(self):
        """Fraction 0 through the engine leaves every lineage trace None."""
        network = identification_network()
        engine = make_engine("full", network=network,
                             rng=random.Random(0))
        model = DsmsModel(cost=1 / 190.0, headroom=0.97, period=1.0)
        loop = ControlLoop(engine, PolePlacementController(model),
                           Monitor(engine, model), EntryActuator(),
                           target=2.0, period=1.0,
                           tuple_tracer=TupleTracer(fraction=0.0))
        record = loop.begin()
        arrivals = [(i * 0.02, (0.5, 0.5, 0.5, 0.5), "src")
                    for i in range(40)]
        loop.run_period(record, 0, arrivals)
        assert loop.tuple_tracer.sampled == 0
        assert engine.admitted_total > 0
        assert all(tup.lineage.trace is None
                   for q in engine.queues.values()
                   for tup, _port in q._items)


class TestDrainScope:
    def test_drain_scope_relabels_service_spans(self):
        tracer = TupleTracer(fraction=1.0)
        ctx = tracer.on_arrival(0.0, "in")
        ctx.service("op", 1.0, 0.1, 0.01)
        with tracer.drain_scope("final"):
            ctx.service("op", 2.0, 0.1, 0.01)
        ctx.finish(2.2, "completed")
        doc = tracer.records()[0]
        kinds = [(e["kind"], e["label"]) for e in doc["events"]]
        assert ("service", "op") in kinds
        drains = [e for e in doc["events"] if e["kind"] == "drain"]
        assert len(drains) == 1
        assert drains[0]["detail"]["scope"] == "final"

    def test_end_of_run_drain_tags_final_spans(self):
        """Tuples admitted in the last period finish inside finish()'s
        drain scope and carry 'final'-scoped drain spans."""
        tracer, _ = traced_run(fraction=1.0, duration=20.0)
        scopes = {e["detail"]["scope"]
                  for d in tracer.records() for e in d["events"]
                  if e["kind"] == "drain"}
        assert "final" in scopes


class TestAuditAndExport:
    def test_drop_audit_explains_a_drop(self):
        tracer, _ = traced_run(fraction=1.0)
        dropped = next(d for d in tracer.records()
                       if d["outcome"] == "dropped")
        audit = tracer.drop_audit(dropped["tuple_id"])
        assert audit["outcome"] == "dropped"
        assert audit["why"]["reason"]
        assert audit["sheds"]

    def test_drop_audit_unknown_id_is_none(self):
        assert TupleTracer(fraction=1.0).drop_audit("nope#0") is None

    def test_module_level_drop_audit_latest_wins(self):
        docs = [{"tuple_id": "a#1", "outcome": "dropped",
                 "events": [{"kind": "shed", "label": "entry", "t": 0.0,
                             "detail": {"reason": "old"}}]},
                {"tuple_id": "a#1", "outcome": "dropped",
                 "events": [{"kind": "shed", "label": "entry", "t": 1.0,
                             "detail": {"reason": "new"}}]}]
        assert drop_audit(docs, "a#1")["why"]["reason"] == "new"

    def test_jsonl_export_round_trips(self, tmp_path):
        tracer, _ = traced_run(fraction=0.05)
        path = tmp_path / "traces.jsonl"
        n = tracer.export_jsonl(path)
        lines = path.read_text().splitlines()
        assert n == len(lines) == len(tracer.records())
        parsed = [json.loads(line) for line in lines]
        assert parsed == tracer.records()

    def test_chrome_export_is_valid_trace_event_json(self, tmp_path):
        tracer, _ = traced_run(fraction=0.05)
        path = tmp_path / "trace.json"
        n = tracer.export_chrome(path)
        assert n == len(tracer.records())
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X"} <= phases
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "completed" in names
        # shed decisions appear as instant markers with full detail
        sheds = [e for e in events if e.get("cat") == "shed"]
        assert sheds
        assert sheds[0]["args"]["detail"]["reason"]

    def test_ring_eviction_bounds_memory_and_index(self):
        tracer = TupleTracer(fraction=1.0, max_finished=10)
        for i in range(25):
            ctx = tracer.on_arrival(float(i), "in")
            ctx.finish(float(i) + 0.1, "completed")
        assert len(tracer.finished) == 10
        assert len(tracer._by_id) == 10
        assert tracer.get("in#0") is None
        assert tracer.get("in#24") is not None


class TestTailAnalyzer:
    def test_percentiles_and_decomposition(self):
        docs = []
        for i in range(100):
            latency = (i + 1) / 10.0
            docs.append({
                "tuple_id": f"in#{i}", "outcome": "completed",
                "latency": latency,
                "events": [
                    {"kind": "service", "t": 0.0, "dur": 0.05, "label": "op",
                     "detail": 0.01},
                    {"kind": "drain", "t": 0.0, "dur": 0.02, "label": "op",
                     "detail": {"cost": 0.01, "scope": "final"}},
                ],
            })
        an = TailAnalyzer(docs)
        assert len(an) == 100
        pcts = an.percentiles()
        assert pcts["p50"] == 5.1
        assert pcts["p95"] == 9.6
        assert pcts["p99"] == 10.0
        decomp = an.decompose(window=5)
        for name in ("mean", "p50", "p95", "p99"):
            row = decomp[name]
            assert abs(row["service"] - 0.05) < 1e-9
            assert abs(row["drain"] - 0.02) < 1e-9
            assert abs(row["latency"]
                       - (row["queue_wait"] + 0.07)) < 1e-9

    def test_dropped_traces_are_excluded(self):
        docs = [{"tuple_id": "a", "outcome": "dropped", "latency": 0.0,
                 "events": []},
                {"tuple_id": "b", "outcome": "completed", "latency": 1.0,
                 "events": []}]
        an = TailAnalyzer(docs)
        assert len(an) == 1
        assert an.mean_latency == 1.0

    def test_cross_check_full_sampling_within_2pct(self):
        """Acceptance: the fully-sampled trace mean equals the Monitor's
        run-wide mean delay within tolerance on a seeded run."""
        tracer, record = traced_run(fraction=1.0)
        check = tracer.analyzer().cross_check(record)
        assert check["ok"], check
        assert check["rel_err"] <= 0.02

    def test_cross_check_partial_sampling_within_2pct(self):
        tracer, record = traced_run(fraction=0.25, seed=11)
        check = tracer.analyzer().cross_check(record)
        assert check["ok"], check

    def test_empty_analyzer_is_calm(self):
        an = TailAnalyzer([])
        assert an.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert an.decompose() == {}
        assert an.mean_latency == 0.0


class TestBusEmission:
    def test_finished_traces_emit_and_collect(self):
        bus = EventBus()
        collector = TraceCollector(bus)
        tracer, _ = traced_run(fraction=0.1, bus=bus)
        try:
            assert len(collector.records()) == tracer.sampled
            assert collector.records() == tracer.records()
        finally:
            collector.close()
        # closed collector no longer accumulates
        before = len(collector.records())
        bus.emit(TupleTraceCompleted(trace={"tuple_id": "x#1"}))
        assert len(collector.records()) == before

    def test_collector_stamps_worker_provenance(self):
        bus = EventBus()
        collector = TraceCollector(bus)
        event = TupleTraceCompleted(trace={"tuple_id": "in#1",
                                           "outcome": "completed"})
        event.worker = "pid4242"
        bus.emit(event)
        collector.close()
        assert collector.records()[0]["worker"] == "pid4242"

    def test_trace_event_pickles_round_trip(self):
        """The relay ships events by pickle; the dict payload must survive."""
        tracer = TupleTracer(fraction=1.0)
        ctx = tracer.on_arrival(0.0, "in")
        ctx.enqueue("op", 0.0)
        ctx.service("op", 0.1, 0.05, 0.01)
        ctx.finish(0.2, "completed")
        event = TupleTraceCompleted(trace=tracer.records()[0])
        clone = pickle.loads(pickle.dumps(event))
        assert clone.trace == tracer.records()[0]

    def test_ingest_drop_hook_samples_and_finishes(self):
        tracer = TupleTracer(fraction=1.0)
        tracer.on_ingest_drop(1.5, "live")
        assert tracer.dropped == 1
        doc = tracer.records()[0]
        assert doc["outcome"] == "dropped"
        audit = tracer.drop_audit(doc["tuple_id"])
        assert audit["why"]["reason"] == "buffer_full"
        assert audit["why"]["shedder"] == "IngestBuffer"
