"""Integration: the control loop observed live through bus + tracer."""

import pytest

from repro.core import (
    ControlLoop,
    DsmsModel,
    EntryActuator,
    EwmaEstimator,
    Monitor,
    PolePlacementController,
)
from repro.dsms import make_engine
from repro.obs import (
    EventBus,
    HealthMonitor,
    PeriodJsonlSink,
    PeriodTracer,
    install_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.workloads import arrivals_from_trace, constant_rate, step_rate

COST = 1.0 / 190.0
HEADROOM = 0.97


def make_loop(bus=None, tracer=None, target=2.0):
    engine = make_engine("fluid", cost=COST, headroom=HEADROOM)
    model = DsmsModel(cost=COST, headroom=HEADROOM, period=1.0)
    monitor = Monitor(engine, model, cost_estimator=EwmaEstimator(COST, 0.3))
    loop = ControlLoop(engine, PolePlacementController(model), monitor,
                       EntryActuator(), target=target, period=1.0,
                       bus=bus, tracer=tracer)
    return loop


def run_loop(loop, trace, seed=1):
    return loop.run(arrivals_from_trace(trace, seed=seed), len(trace.values))


class TestLoopEvents:
    def test_per_period_event_stream(self):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        loop = make_loop(bus=bus)
        rec = run_loop(loop, constant_rate(300.0, 20))
        kinds = [e.kind for e in events]
        assert kinds[0] == "run_started"
        assert kinds[-1] == "run_finished"
        periods = [e for e in events if e.kind == "period"]
        assert len(periods) == 20
        # the event carries exactly the record rows, in order, live
        assert [e.record for e in periods] == rec.periods
        # overload run: the entry shedder dropped tuples -> shed events
        sheds = [e for e in events if e.kind == "shed"]
        assert sheds and all(e.action == "entry" for e in sheds)
        assert sum(e.count for e in sheds) == (rec.offered_total
                                               - sum(p.admitted
                                                     for p in rec.periods))

    def test_silent_bus_emits_nothing_and_run_is_identical(self):
        bus = EventBus()
        rec_silent = run_loop(make_loop(bus=bus), constant_rate(300.0, 15))
        observed = EventBus()
        observed.subscribe(lambda e: None)
        rec_observed = run_loop(make_loop(bus=observed),
                                constant_rate(300.0, 15))
        assert rec_silent.periods == rec_observed.periods

    def test_target_changed_emitted_on_schedule_steps(self):
        bus = EventBus()
        changes = []
        bus.subscribe(changes.append, kinds=("target_changed",))
        loop = make_loop(bus=bus, target=lambda k: 1.0 if k < 10 else 3.0)
        run_loop(loop, constant_rate(300.0, 20))
        assert len(changes) == 1
        assert (changes[0].old, changes[0].new) == (1.0, 3.0)

    def test_metrics_bridge_end_to_end(self):
        bus = EventBus()
        bridge = install_metrics(bus, MetricsRegistry())
        rec = run_loop(make_loop(bus=bus), constant_rate(300.0, 20))
        assert bridge.periods.value(shard="main") == 20
        assert bridge.offered.value(shard="main") == rec.offered_total
        text = bridge.registry.prometheus_text()
        assert "repro_periods_total" in text
        assert "repro_period_delay_seconds_bucket" in text

    def test_period_jsonl_sink_streams_rows(self, tmp_path):
        from repro.metrics.export import PERIOD_FIELDS, load_jsonl

        bus = EventBus()
        path = tmp_path / "live.jsonl"
        with PeriodJsonlSink(path, bus) as sink:
            rec = run_loop(make_loop(bus=bus), constant_rate(200.0, 10))
            assert sink.rows == 10
        rows = load_jsonl(path)
        assert len(rows) == 10
        assert rows[3]["k"] == rec.periods[3].k
        assert set(PERIOD_FIELDS) <= set(rows[0])


class TestLoopTracing:
    def test_spans_cover_the_run_wall_clock(self):
        tracer = PeriodTracer()
        loop = make_loop(tracer=tracer)
        rec = run_loop(loop, constant_rate(300.0, 40))
        assert len(tracer.periods) == 40
        flame = tracer.flame()
        assert flame["wall_seconds"] == pytest.approx(rec.wall_seconds)
        # acceptance: traced segments sum to within 10% of the measured wall
        assert flame["coverage"] == pytest.approx(1.0, abs=0.1)
        assert set(flame["segments"]) <= {
            "ingest", "engine", "monitor", "controller", "actuator",
            "bookkeeping", "drain"}

    def test_untraced_loop_records_nothing(self):
        loop = make_loop()
        run_loop(loop, constant_rate(200.0, 5))
        assert loop.tracer is None


class TestLoopHealth:
    def test_saturating_overload_raises_saturation_and_qos(self):
        bus = EventBus()
        hm = HealthMonitor(bus)
        # slam 10x capacity for 5 s, then trickle: the backlog holds the
        # delay estimate far above the tight target while the controller
        # commands zero admission -> alpha pins at 1.0 for many periods
        loop = make_loop(bus=bus, target=0.5)
        run_loop(loop, step_rate(30, 5, low=2000.0, high=60.0))
        assert hm.has("actuator_saturated")
        assert hm.has("qos_violation")
        sat = hm.reports("actuator_saturated")[0]
        assert sat.value == pytest.approx(1.0)

    def test_nominal_run_stays_clean(self):
        bus = EventBus()
        hm = HealthMonitor(bus)
        loop = make_loop(bus=bus, target=2.0)
        run_loop(loop, constant_rate(100.0, 30))  # well under capacity
        hm.finalize()
        assert hm.healthy(), hm.summary()
