"""Shared isolation for observability tests.

Several tests subscribe to the process-wide default bus; leaking a
subscription would silently enable event emission for every later test in
the session (and skew the disabled-path perf assumptions). This autouse
fixture restores the default bus's subscriber list and the default
registry's metrics around every test in this package.
"""

import pytest

from repro.obs import get_bus, get_registry


@pytest.fixture(autouse=True)
def _isolate_default_bus_and_registry():
    bus = get_bus()
    before = list(bus._subs)
    registry = get_registry()
    names_before = set(registry.names())
    yield
    bus._subs = before
    # drop metrics created during the test, keep pre-existing families
    with registry._lock:
        for name in list(registry._metrics):
            if name not in names_before:
                del registry._metrics[name]
