"""Unit tests for the online health detectors (synthetic event streams)."""

import pytest

from repro.metrics import PeriodRecord
from repro.obs import EventBus, HealthMonitor
from repro.obs.events import DrainTruncated, IngestStats, PeriodDecision


def period(k, delay=1.0, target=2.0, alpha=0.1, v=180.0, u=180.0):
    return PeriodRecord(
        k=k, time=float(k + 1), target=target, delay_estimate=delay,
        queue_length=10, cost=0.005, inflow_rate=180.0, outflow_rate=180.0,
        offered=200, admitted=180, shed_retro=0, v=v, u=u,
        error=target - delay, alpha=alpha,
    )


def feed(bus, records, shard=None):
    emitter = bus.scoped(shard) if shard else bus
    for p in records:
        emitter.emit(PeriodDecision(record=p))


class TestQosViolation:
    def test_sustained_violation_reported_as_one_episode(self):
        bus = EventBus()
        hm = HealthMonitor(bus, qos_patience=3)
        feed(bus, [period(k, delay=5.0) for k in range(6)])
        reports = hm.reports("qos_violation")
        assert len(reports) == 1
        r = reports[0]
        assert (r.first_k, r.last_k, r.periods) == (0, 5, 6)
        assert r.value == pytest.approx(3.0)  # worst excess over the target
        assert r.severity == "critical"
        assert r.open  # still ongoing at end of stream

    def test_short_blips_below_patience_stay_clean(self):
        bus = EventBus()
        hm = HealthMonitor(bus, qos_patience=3)
        feed(bus, [period(0, delay=5.0), period(1, delay=5.0),
                   period(2, delay=1.0), period(3, delay=5.0),
                   period(4, delay=5.0)])
        assert hm.healthy()

    def test_recovery_closes_the_episode(self):
        bus = EventBus()
        hm = HealthMonitor(bus, qos_patience=2)
        feed(bus, [period(k, delay=5.0) for k in range(3)])
        feed(bus, [period(3, delay=1.0)])
        (r,) = hm.reports("qos_violation")
        assert not r.open
        assert r.last_k == 2

    def test_per_shard_streaks_are_independent(self):
        bus = EventBus()
        hm = HealthMonitor(bus, qos_patience=2)
        for k in range(3):
            feed(bus, [period(k, delay=5.0)], shard="hot")
            feed(bus, [period(k, delay=0.5)], shard="cold")
        reports = hm.reports("qos_violation")
        assert [r.shard for r in reports] == ["hot"]


class TestActuatorSaturation:
    def test_pinned_alpha_reported(self):
        bus = EventBus()
        hm = HealthMonitor(bus, saturation_patience=3)
        feed(bus, [period(k, alpha=1.0) for k in range(4)])
        (r,) = hm.reports("actuator_saturated")
        assert r.first_k == 0 and r.last_k == 3

    def test_heavy_but_unsaturated_shedding_is_fine(self):
        bus = EventBus()
        hm = HealthMonitor(bus, saturation_patience=2)
        feed(bus, [period(k, alpha=0.95) for k in range(10)])
        assert not hm.has("actuator_saturated")


class TestControllerWindup:
    def test_diverging_clamped_command_reported(self):
        bus = EventBus()
        hm = HealthMonitor(bus, windup_patience=3)
        feed(bus, [period(k, v=0.0, u=-100.0 * (k + 1)) for k in range(5)])
        (r,) = hm.reports("controller_windup")
        assert r.severity == "warning"
        assert r.periods >= 3

    def test_stable_zero_command_is_not_windup(self):
        bus = EventBus()
        hm = HealthMonitor(bus, windup_patience=2)
        feed(bus, [period(k, v=0.0, u=-100.0) for k in range(6)])
        assert not hm.has("controller_windup")


class TestDrainTruncation:
    def test_event_becomes_report(self):
        bus = EventBus()
        hm = HealthMonitor(bus)
        bus.scoped("s1").emit(DrainTruncated(leftover=42, time=400.0))
        (r,) = hm.reports("drain_truncated")
        assert r.shard == "s1" and r.value == 42.0 and not r.open


class TestShardImbalance:
    def _run(self, hm, bus, spreads):
        # two shards per period; shard "a" carries the spread
        for k, spread in enumerate(spreads):
            bus.scoped("a").emit(PeriodDecision(
                record=period(k, delay=1.0 + spread)))
            bus.scoped("b").emit(PeriodDecision(record=period(k, delay=1.0)))
        hm.finalize()

    def test_sustained_spread_reported_with_worst_shard(self):
        bus = EventBus()
        hm = HealthMonitor(bus, imbalance_spread=1.0, imbalance_patience=3)
        self._run(hm, bus, spreads=[5.0] * 4)  # spread 5 > 1.0 * target 2.0
        (r,) = hm.reports("shard_imbalance")
        assert r.shard == "a"
        assert r.value == pytest.approx(5.0)
        assert r.first_k == 0

    def test_balanced_fleet_stays_clean(self):
        bus = EventBus()
        hm = HealthMonitor(bus, imbalance_spread=1.0, imbalance_patience=2)
        self._run(hm, bus, spreads=[0.5] * 6)
        assert hm.healthy()

    def test_single_shard_never_imbalanced(self):
        bus = EventBus()
        hm = HealthMonitor(bus, imbalance_patience=1)
        for k in range(4):
            bus.scoped("only").emit(PeriodDecision(
                record=period(k, delay=50.0, target=0.1)))
        hm.finalize()
        assert not hm.has("shard_imbalance")


class TestIngestDrops:
    def _feed(self, bus, dropped, shard="live"):
        for k, d in enumerate(dropped):
            bus.scoped(shard).emit(IngestStats(k=k, accepted=100, dropped=d))

    def test_sustained_drops_reported_as_one_episode(self):
        bus = EventBus()
        hm = HealthMonitor(bus, ingest_patience=3)
        self._feed(bus, [10, 25, 5, 40])
        (r,) = hm.reports("ingest_drops")
        assert r.shard == "live"
        assert (r.first_k, r.last_k, r.periods) == (0, 3, 4)
        assert r.value == 40.0               # worst drops/period
        assert r.severity == "warning"
        assert "no backpressure" in r.detail
        assert r.open

    def test_blips_below_patience_stay_clean(self):
        bus = EventBus()
        hm = HealthMonitor(bus, ingest_patience=3)
        self._feed(bus, [10, 10, 0, 10, 10])
        assert hm.healthy()
        assert not hm.has("ingest_drops")

    def test_recovery_closes_the_episode(self):
        bus = EventBus()
        hm = HealthMonitor(bus, ingest_patience=2)
        self._feed(bus, [5, 5, 5, 0])
        (r,) = hm.reports("ingest_drops")
        assert not r.open
        assert r.last_k == 2

    def test_clean_ingest_never_reports(self):
        bus = EventBus()
        hm = HealthMonitor(bus, ingest_patience=1)
        self._feed(bus, [0, 0, 0])
        assert hm.healthy()


class TestSeverityFiltering:
    def _warning_only(self):
        # a windup episode is warning-severity; nothing critical fires
        bus = EventBus()
        hm = HealthMonitor(bus, windup_patience=2)
        feed(bus, [period(k, delay=1.0, v=0.0, u=-100.0 * (k + 1))
                   for k in range(4)])
        return hm

    def test_min_severity_critical_ignores_warnings(self):
        hm = self._warning_only()
        assert not hm.healthy()                       # strict form fails
        assert hm.healthy(min_severity="critical")    # filtered form passes

    def test_min_severity_critical_fails_on_critical(self):
        bus = EventBus()
        hm = HealthMonitor(bus, qos_patience=1)
        feed(bus, [period(0, delay=9.0)])
        assert not hm.healthy(min_severity="critical")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            self._warning_only().healthy(min_severity="catastrophic")

    def test_critical_open_tracks_the_live_episode(self):
        bus = EventBus()
        hm = HealthMonitor(bus, qos_patience=2)
        assert not hm.critical_open()
        feed(bus, [period(k, delay=9.0) for k in range(3)])
        assert hm.critical_open()           # episode running -> 503 territory
        feed(bus, [period(3, delay=0.5)])
        assert not hm.critical_open()       # recovered, but history remains
        assert hm.has("qos_violation")


class TestFinalize:
    def test_finalize_seals_open_episodes(self):
        bus = EventBus()
        hm = HealthMonitor(bus, qos_patience=2)
        feed(bus, [period(k, delay=9.0) for k in range(3)])
        hm.finalize()
        (r,) = hm.reports("qos_violation")
        assert r.open  # sealed open: the episode outlived the run
        # a late "good" straggler must NOT flip the sealed report closed
        feed(bus, [period(3, delay=0.5)])
        assert r.open
        assert r.last_k == 2

    def test_late_bad_events_start_a_fresh_episode(self):
        bus = EventBus()
        hm = HealthMonitor(bus, qos_patience=2)
        feed(bus, [period(k, delay=9.0) for k in range(3)])
        hm.finalize()
        # more bad periods after sealing: a second episode, not an
        # extension of the first
        feed(bus, [period(k, delay=9.0) for k in range(10, 13)])
        reports = hm.reports("qos_violation")
        assert len(reports) == 2
        assert reports[0].last_k == 2
        assert reports[1].first_k == 10

    def test_finalize_annotates_unrecovered_worker_down(self):
        from repro.obs.events import WorkerDown
        bus = EventBus()
        hm = HealthMonitor(bus)
        bus.emit(WorkerDown(shard="shard1", exitcode=-9, last_k=17,
                            restarts=1))
        hm.finalize()
        (r,) = hm.reports("worker_down")
        assert r.open
        assert "never rejoined" in r.detail


class TestLifecycle:
    def test_summary_shape(self):
        bus = EventBus()
        hm = HealthMonitor(bus, qos_patience=1)
        feed(bus, [period(0, delay=5.0)])
        s = hm.summary()
        assert s["healthy"] is False
        assert s["counts"] == {"qos_violation": 1}
        assert s["reports"][0]["kind"] == "qos_violation"
        assert s["reports"][0]["periods"] == 1

    def test_close_detaches_from_bus(self):
        bus = EventBus()
        with HealthMonitor(bus, qos_patience=1) as hm:
            pass
        assert not bus
        feed(bus, [period(0, delay=9.0)])
        assert hm.healthy()

    def test_bad_patience_rejected(self):
        with pytest.raises(ValueError):
            HealthMonitor(EventBus(), qos_patience=0)
