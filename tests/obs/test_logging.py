"""Unit tests for logging configuration and the env knobs."""

import io
import json
import logging

import pytest

from repro.obs import configure_logging, get_logger
from repro.obs.logconf import LOGGER_NAME


@pytest.fixture(autouse=True)
def _restore_repro_logger():
    logger = logging.getLogger(LOGGER_NAME)
    handlers = list(logger.handlers)
    level = logger.level
    propagate = logger.propagate
    yield
    logger.handlers = handlers
    logger.setLevel(level)
    logger.propagate = propagate


class TestGetLogger:
    def test_names_land_under_the_repro_hierarchy(self):
        assert get_logger("dsms").name == "repro.dsms"
        assert get_logger("repro.service").name == "repro.service"
        assert get_logger("repro").name == "repro"


class TestConfigureLogging:
    def test_text_output(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        get_logger("experiments").info("run %d done", 7)
        out = stream.getvalue()
        assert "repro.experiments" in out
        assert "run 7 done" in out

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging(level="warning", stream=stream)
        get_logger("x").info("quiet")
        get_logger("x").warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_json_lines(self):
        stream = io.StringIO()
        configure_logging(level="debug", json_lines=True, stream=stream)
        get_logger("workloads").debug("cache hit %s", "abc")
        doc = json.loads(stream.getvalue().strip())
        assert doc["level"] == "debug"
        assert doc["logger"] == "repro.workloads"
        assert doc["message"] == "cache hit abc"
        assert "ts" in doc

    def test_idempotent_reconfiguration(self):
        s1, s2 = io.StringIO(), io.StringIO()
        configure_logging(level="info", stream=s1)
        configure_logging(level="info", stream=s2)
        get_logger("x").info("once")
        # the second call replaced the first handler: one line, second stream
        assert s1.getvalue() == ""
        assert s2.getvalue().count("once") == 1

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        monkeypatch.setenv("REPRO_LOG_JSON", "1")
        stream = io.StringIO()
        logger = configure_logging(stream=stream)
        assert logger.level == logging.DEBUG
        get_logger("y").debug("hello")
        assert json.loads(stream.getvalue().strip())["message"] == "hello"

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")
