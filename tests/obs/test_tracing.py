"""Unit tests for the per-period tracer and flame merging."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import PeriodTracer, merge_flames


class TestPeriodTracer:
    def test_segments_accumulate_per_period_and_per_run(self):
        tr = PeriodTracer()
        tr.begin_period(0)
        tr.add("engine", 0.2)
        tr.add("monitor", 0.1)
        tr.end_period()
        tr.begin_period(1)
        tr.add("engine", 0.3)
        tr.end_period()
        assert tr.segments == pytest.approx({"engine": 0.5, "monitor": 0.1})
        assert tr.periods[0] == pytest.approx(
            {"k": 0.0, "engine": 0.2, "monitor": 0.1})
        assert tr.periods[1] == pytest.approx({"k": 1.0, "engine": 0.3})
        assert tr.total_seconds() == pytest.approx(0.6)

    def test_span_context_manager_measures_wall_time(self):
        tr = PeriodTracer()
        with tr.span("drain"):
            sum(range(1000))
        assert tr.segments["drain"] >= 0.0
        assert list(tr.segments) == ["drain"]

    def test_negative_charge_clamped(self):
        tr = PeriodTracer()
        tr.add("engine", -5.0)  # clock went backwards
        assert tr.segments["engine"] == 0.0

    def test_out_of_period_charges_hit_run_totals_only(self):
        tr = PeriodTracer()
        tr.add("drain", 1.0)
        assert tr.periods == []
        assert tr.segments["drain"] == 1.0

    def test_flame_summary(self):
        tr = PeriodTracer()
        tr.begin_period(0)
        tr.add("engine", 0.6)
        tr.add("monitor", 0.2)
        tr.end_period()
        tr.wall_seconds = 1.0
        flame = tr.flame()
        assert flame["periods"] == 1
        assert flame["total_seconds"] == pytest.approx(0.8)
        assert flame["coverage"] == pytest.approx(0.8)
        # ordered by descending share, with fractions of accounted time
        assert list(flame["segments"]) == ["engine", "monitor"]
        assert flame["fractions"]["engine"] == pytest.approx(0.75)

    def test_reset(self):
        tr = PeriodTracer()
        tr.begin_period(0)
        tr.add("engine", 1.0)
        tr.reset()
        assert tr.segments == {} and tr.periods == []
        assert tr.total_seconds() == 0.0


class TestMergeFlames:
    def _flame(self, engine, wall, periods=10):
        tr = PeriodTracer()
        tr.add("engine", engine)
        tr.wall_seconds = wall
        flame = tr.flame()
        flame["periods"] = periods
        return flame

    def test_sums_segments_across_shards(self):
        merged = merge_flames({
            "s0": self._flame(0.4, wall=1.0),
            "s1": self._flame(0.2, wall=0.8),
        })
        assert merged["segments"]["engine"] == pytest.approx(0.6)
        assert merged["wall_seconds"] == pytest.approx(1.0)  # max shard wall
        assert set(merged["shards"]) == {"s0", "s1"}

    def test_explicit_wall_override(self):
        merged = merge_flames({"s0": self._flame(0.4, wall=0.5)},
                              wall_seconds=2.0)
        assert merged["wall_seconds"] == pytest.approx(2.0)
        assert merged["coverage"] == pytest.approx(0.2)

    def test_empty_input_raises(self):
        with pytest.raises(ObservabilityError):
            merge_flames({})
