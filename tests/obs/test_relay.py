"""Cross-process relay: worker events arrive home with provenance."""

import multiprocessing

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.parallel import Job, run_jobs
from repro.obs import EventBus, EventRelay, MetricsRegistry
from repro.obs.events import PeriodDecision, RunStarted
from repro.obs.relay import relay_forwarder, worker_relay
from repro.service import ServiceConfig


def _emit_from_worker(relay_queue, worker, n):
    """Child-process target: emit n labelled events on a private bus."""
    bus = EventBus()
    with worker_relay(relay_queue, worker=worker, bus=bus):
        for i in range(n):
            bus.emit(RunStarted(period=float(i), shard="shard0"))


class TestRelayRoundTrip:
    def test_two_processes_with_provenance(self):
        """Events from two real child processes land on the parent bus
        with ``worker/shard`` provenance and per-worker counts."""
        parent_bus = EventBus()
        registry = MetricsRegistry()
        seen = []
        parent_bus.subscribe(seen.append)
        relay = EventRelay(bus=parent_bus, registry=registry).start()
        try:
            procs = [
                multiprocessing.Process(
                    target=_emit_from_worker, args=(relay.queue, w, 3))
                for w in ("w0", "w1")
            ]
            for p in procs:
                p.start()
            for p in procs:
                p.join(timeout=30.0)
                assert p.exitcode == 0
            assert relay.flush(timeout=10.0)
        finally:
            relay.stop()

        assert len(seen) == 6
        assert {e.shard for e in seen} == {"w0/shard0", "w1/shard0"}
        assert all(e.worker in ("w0", "w1") for e in seen)
        assert relay.per_worker == {"w0": 3, "w1": 3}
        counter = registry.get("repro_obs_relayed_total")
        assert counter.value(worker="w0") == 3
        assert counter.value(worker="w1") == 3

    def test_unsharded_events_get_the_worker_as_shard(self):
        parent_bus = EventBus()
        seen = []
        parent_bus.subscribe(seen.append)
        relay = EventRelay(bus=parent_bus, registry=MetricsRegistry()).start()
        try:
            relay.queue.put(("w9", RunStarted(period=1.0)))
            assert relay.flush(timeout=10.0)
        finally:
            relay.stop()
        assert [e.shard for e in seen] == ["w9"]

    def test_forwarder_skips_already_relayed_events(self):
        """The cycle guard: a forwarder on the re-emitting bus is a no-op
        for events that already carry a worker stamp."""
        shipped = []

        class FakeQueue:
            def put(self, item):
                shipped.append(item)

        forward = relay_forwarder(FakeQueue(), "w0")
        fresh = RunStarted(period=0.0)
        forward(fresh)
        stamped = RunStarted(period=1.0)
        stamped.worker = "w1"  # came through a relay once already
        forward(stamped)
        assert [event.period for _w, event in shipped] == [0.0]

    def test_start_is_idempotent_and_stop_twice_is_safe(self):
        relay = EventRelay(bus=EventBus(), registry=MetricsRegistry())
        relay.start()
        queue = relay.queue
        assert relay.start().queue is queue
        relay.stop()
        relay.stop()
        assert relay.queue is None


class TestRunJobsRelay:
    CFG = ExperimentConfig(duration=40.0)

    def jobs(self):
        return [
            Job(config=self.CFG, workload_kind="web", engine_kind="fluid",
                seed=s, key=f"seed{s}")
            for s in (1, 2)
        ]

    def test_pool_events_relayed_with_pid_provenance(self):
        parent_bus = EventBus()
        seen = []
        parent_bus.subscribe(seen.append)
        with EventRelay(bus=parent_bus, registry=MetricsRegistry()) as relay:
            records = run_jobs(self.jobs(), workers=2, relay=relay)
            assert relay.flush(timeout=30.0)
            assert relay.relayed == len(seen)
        assert len(records) == 2
        periods = [e for e in seen if isinstance(e, PeriodDecision)]
        assert len(periods) == 2 * len(records[0].periods)
        assert all(e.worker.startswith("pid") for e in seen)
        assert all(e.shard.startswith("pid") for e in periods)

    def test_relay_never_changes_the_records(self):
        """Determinism contract survives the relay: bit-identical series."""
        plain = run_jobs(self.jobs(), workers=2)
        with EventRelay(bus=EventBus(),
                        registry=MetricsRegistry()) as relay:
            relayed = run_jobs(self.jobs(), workers=2, relay=relay)
        for a, b in zip(plain, relayed):
            assert a.periods == b.periods
            assert a.departures == b.departures

    def test_serial_fallback_ignores_the_relay(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        parent_bus = EventBus()
        seen = []
        parent_bus.subscribe(seen.append)
        relay = EventRelay(bus=parent_bus, registry=MetricsRegistry())
        records = run_jobs(self.jobs(), workers=2, relay=relay)
        assert len(records) == 2
        assert seen == []           # serial events go to the default bus
        assert relay.queue is None  # the pool path never started it
