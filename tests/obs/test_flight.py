"""Tests for the incident flight recorder and its deterministic replay."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_strategy
from repro.metrics import PeriodRecord
from repro.obs import EventBus, FlightRecorder, HealthMonitor
from repro.obs.events import PeriodDecision
from repro.obs.flight import (
    FLIGHT_FORMAT,
    load_bundle,
    main,
    replay_bundle,
)
from repro.service import ServiceConfig
from repro.service.config import FleetConfig
from repro.workloads import constant_rate


def period(k, delay=1.0, target=2.0, alpha=0.1, v=180.0, u=180.0):
    return PeriodRecord(
        k=k, time=float(k + 1), target=target, delay_estimate=delay,
        queue_length=10, cost=0.005, inflow_rate=180.0, outflow_rate=180.0,
        offered=200, admitted=180, shed_retro=0, v=v, u=u,
        error=target - delay, alpha=alpha,
    )


class TestRecording:
    def test_rings_are_bounded(self, tmp_path):
        bus = EventBus()
        rec = FlightRecorder(bus, ring=16, directory=tmp_path)
        for k in range(100):
            bus.emit(PeriodDecision(record=period(k)))
        ring = rec.snapshot()["main"]["period"]
        assert len(ring) == 16
        assert [doc["record"]["k"] for doc in ring] == list(range(84, 100))
        rec.close()

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError):
            FlightRecorder(EventBus(), ring=0, directory=tmp_path)
        with pytest.raises(ObservabilityError):
            FlightRecorder(EventBus(), ring=8, directory=tmp_path,
                           max_dumps=0)

    def test_manual_dump_writes_a_bundle(self, tmp_path):
        bus = EventBus()
        rec = FlightRecorder(bus, ring=8, directory=tmp_path,
                             runtime="single")
        bus.emit(PeriodDecision(record=period(0)))
        path = rec.dump(reason="operator asked", trigger="manual")
        assert path is not None and path.exists()
        doc = json.loads(path.read_text())
        assert doc["format"] == FLIGHT_FORMAT
        assert doc["reason"] == "operator asked"
        assert doc["trigger"] == "manual"
        assert doc["runtime"] == "single"
        assert doc["rings"]["main"]["period"][0]["record"]["k"] == 0
        assert doc["replay"] is None
        rec.close()

    def test_max_dumps_caps_disk_usage(self, tmp_path):
        bus = EventBus()
        rec = FlightRecorder(bus, ring=8, directory=tmp_path, max_dumps=2)
        assert rec.dump() is not None
        assert rec.dump() is not None
        assert rec.dump() is None  # capped: a flapping detector can't fill disk
        assert len(rec.incidents) == 2
        rec.close()

    def test_closed_recorder_refuses_to_dump(self, tmp_path):
        rec = FlightRecorder(EventBus(), ring=8, directory=tmp_path)
        rec.close()
        assert rec.dump() is None

    def test_critical_health_episode_auto_dumps(self, tmp_path):
        bus = EventBus()
        rec = FlightRecorder(bus, ring=8, directory=tmp_path)
        hm = rec.watch(HealthMonitor(bus, qos_patience=3))
        for k in range(6):
            bus.emit(PeriodDecision(record=period(k, delay=9.0)))
        assert len(rec.incidents) == 1  # one dump per episode opening
        doc = json.loads(rec.incidents[0].read_text())
        assert doc["trigger"] == "health"
        assert "qos_violation" in doc["reason"]
        assert doc["health"]["counts"]["qos_violation"] == 1
        hm.close()
        rec.close()

    def test_warnings_do_not_trigger_dumps(self, tmp_path):
        bus = EventBus()
        rec = FlightRecorder(bus, ring=8, directory=tmp_path)
        rec.watch(HealthMonitor(bus, windup_patience=2))
        # diverging clamped command: a warning-severity windup episode
        for k in range(6):
            bus.emit(PeriodDecision(record=period(
                k, delay=1.0, v=0.0, u=-100.0 * (k + 1))))
        assert rec.incidents == []
        rec.close()


class TestReplay:
    def _strategy_bundle(self, tmp_path, n=30):
        config = ExperimentConfig(duration=float(n), seed=11)
        bus = EventBus()
        rec = FlightRecorder(
            bus, ring=64, directory=tmp_path, runtime="single",
            experiment=config,
            replay_spec={
                "kind": "strategy", "strategy": "CTRL",
                "workload": {"kind": "constant", "rate": 250.0,
                             "n_periods": n, "period": 1.0},
            })
        run_strategy("CTRL", constant_rate(250.0, n), config, bus=bus)
        path = rec.dump(reason="test", trigger="manual")
        rec.close()
        return path

    def test_strategy_bundle_replays_exactly(self, tmp_path):
        path = self._strategy_bundle(tmp_path)
        diff = replay_bundle(load_bundle(path))
        assert diff.ok
        assert diff.compared == 30
        assert diff.mismatches == []
        assert main(["replay", str(path)]) == 0
        assert main(["info", str(path)]) == 0

    def test_tampered_bundle_fails_the_diff(self, tmp_path):
        path = self._strategy_bundle(tmp_path)
        doc = json.loads(path.read_text())
        doc["rings"]["main"]["period"][-1]["record"]["alpha"] += 0.25
        path.write_text(json.dumps(doc))
        diff = replay_bundle(load_bundle(path))
        assert not diff.ok
        assert len(diff.mismatches) == 1
        assert diff.mismatches[0]["field"] == "alpha"
        assert main(["replay", str(path)]) == 1

    def test_live_bundle_is_honestly_not_replayable(self, tmp_path):
        bus = EventBus()
        rec = FlightRecorder(bus, ring=8, directory=tmp_path,
                             runtime="live")
        bus.emit(PeriodDecision(record=period(0)))
        path = rec.dump()
        rec.close()
        assert main(["replay", str(path)]) == 2

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "not-a-flight-bundle"}))
        with pytest.raises(ObservabilityError):
            load_bundle(path)


class TestServiceBundles:
    CFG = ExperimentConfig(duration=30.0, seed=7)

    def test_lockstep_service_bundle_replays_exactly(self, tmp_path):
        from repro.experiments.service_demo import run_service_experiment
        svc = ServiceConfig(n_shards=2, flight=32, flight_dir=str(tmp_path))
        result = run_service_experiment(self.CFG, svc, "web")
        assert result.incidents, "the skewed web run opens a critical episode"
        doc = load_bundle(result.incidents[0])
        assert doc["runtime"] == "lockstep"
        assert doc["service"]["n_shards"] == 2
        diff = replay_bundle(doc)
        assert diff.ok and diff.compared > 0

    def test_fleet_bundle_carries_provenance_and_replays(self, tmp_path):
        from repro.experiments.service_demo import run_service_experiment
        svc = FleetConfig(n_shards=2, sync=True, flight=32,
                          flight_dir=str(tmp_path))
        result = run_service_experiment(self.CFG, svc, "web")
        assert result.incidents
        doc = load_bundle(result.incidents[0])
        assert doc["runtime"] == "fleet"
        # rings were assembled in the parent over the relay: worker
        # events key by pid<pid>/<shard> provenance, while the parent's
        # own coordinator-level events ring under "main"
        worker_keys = [s for s in doc["rings"] if s != "main"]
        assert len(worker_keys) == 2
        assert all("/" in s and s.startswith("pid") for s in worker_keys)
        assert any("period" in doc["rings"][s] for s in worker_keys)
        diff = replay_bundle(doc)  # sync fleet == lockstep trajectory
        assert diff.ok and diff.compared > 0
        assert main(["replay", str(result.incidents[0])]) == 0
