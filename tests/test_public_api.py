"""Public-API consistency: every exported name exists and imports cleanly."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.control",
    "repro.core",
    "repro.dsms",
    "repro.dsms.operators",
    "repro.experiments",
    "repro.metrics",
    "repro.serve",
    "repro.shedding",
    "repro.workloads",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    assert exported, f"{name} must declare __all__"
    for symbol in exported:
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol}"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_is_sorted_and_unique(name):
    mod = importlib.import_module(name)
    exported = list(getattr(mod, "__all__", []))
    assert len(exported) == len(set(exported)), f"duplicates in {name}.__all__"


def test_errors_hierarchy():
    import repro
    from repro import errors

    for exc_name in errors.__dict__:
        exc = getattr(errors, exc_name)
        if isinstance(exc, type) and issubclass(exc, Exception):
            assert issubclass(exc, errors.ReproError) or exc is Exception


def test_version_exposed():
    import repro
    assert repro.__version__ == "1.0.0"


def test_every_public_callable_has_a_docstring():
    missing = []
    for name in PACKAGES:
        mod = importlib.import_module(name)
        for symbol in getattr(mod, "__all__", []):
            obj = getattr(mod, symbol)
            if not isinstance(obj, type) and getattr(obj, "__module__", "") \
                    == "typing":
                continue  # type aliases carry typing's docstring machinery
            if callable(obj) and not getattr(obj, "__doc__", None):
                missing.append(f"{name}.{symbol}")
    assert not missing, f"public callables without docstrings: {missing}"
