"""Unit tests for run records and text reporting."""

import pytest

from repro.dsms import Departure
from repro.metrics import PeriodRecord, RunRecord, compute_qos
from repro.metrics.report import (
    ascii_series,
    format_table,
    qos_table,
    ratio_table,
)


def period_record(k, target=2.0, y=1.5, q=100):
    return PeriodRecord(
        k=k, time=float(k + 1), target=target, delay_estimate=y,
        queue_length=q, cost=0.005, inflow_rate=200.0, outflow_rate=180.0,
        offered=200, admitted=180, shed_retro=0, v=180.0, u=0.0,
        error=target - y, alpha=0.1,
    )


def dep(arrived, delay, shed=False):
    return Departure(arrived, arrived + delay, shed)


class TestRunRecord:
    def make(self):
        rec = RunRecord(period=1.0)
        rec.add(period_record(0, target=1.0), [dep(0.2, 0.5)])
        rec.add(period_record(1, target=3.0), [dep(1.2, 4.0)])
        rec.offered_total = 400
        rec.duration = 6.0  # both in-window departures resolve by t = 5.2
        return rec

    def test_series_extraction(self):
        rec = self.make()
        assert rec.estimated_delays() == [1.5, 1.5]
        assert rec.queue_lengths() == [100, 100]
        assert rec.targets() == [1.0, 3.0]
        assert rec.times() == [1.0, 2.0]

    def test_true_delays_by_arrival_period(self):
        rec = self.make()
        y = rec.true_delays()
        assert y[0] == pytest.approx(0.5)
        assert y[1] == pytest.approx(4.0)

    def test_qos_uses_recorded_target_schedule(self):
        rec = self.make()
        q = rec.qos()
        # tuple 1: delay 0.5 vs target 1.0 -> fine; tuple 2: 4.0 vs 3.0 -> 1.0 over
        assert q.delayed_tuples == 1
        assert q.accumulated_violation == pytest.approx(1.0)

    def test_qos_within_window_excludes_drain(self):
        rec = self.make()
        # a tuple that departs after the 2 s window (resolved during drain)
        rec.departures.append(dep(1.9, 50.0))
        q_in = rec.qos(within_window=True)
        q_all = rec.qos(within_window=False)
        assert q_in.delayed_tuples == 1
        assert q_all.delayed_tuples == 2

    def test_entry_drops_added_to_loss(self):
        rec = self.make()
        rec.entry_dropped_total = 100
        q = rec.qos()
        assert q.shed == 100
        assert q.loss_ratio == pytest.approx(100 / 400)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_qos_table_contains_strategies(self):
        q = compute_qos([dep(0.0, 3.0)], 2.0, 1)
        out = qos_table({"CTRL": q, "AURORA": q})
        assert "CTRL" in out and "AURORA" in out
        assert "loss_ratio" in out

    def test_ratio_table_reference_is_one(self):
        q1 = compute_qos([dep(0.0, 3.0)], 2.0, 1)
        q2 = compute_qos([dep(0.0, 4.0)], 2.0, 1)
        out = ratio_table({"CTRL": q1, "AURORA": q2}, reference="CTRL")
        ctrl_row = [l for l in out.splitlines() if l.strip().startswith("CTRL")][0]
        assert "1.000" in ctrl_row

    def test_ascii_series_renders(self):
        out = ascii_series([0, 1, 2, 3, 2, 1, 0], width=7, height=4,
                           title="demo", y_label="t")
        assert "demo" in out
        assert "*" in out

    def test_ascii_series_empty(self):
        assert ascii_series([]) == "(empty series)"

    def test_ascii_series_constant(self):
        out = ascii_series([5.0] * 10)
        assert "*" in out
