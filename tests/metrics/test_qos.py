"""Unit tests for QoS metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.dsms import Departure
from repro.errors import ExperimentError
from repro.metrics import (
    QosMetrics,
    compute_qos,
    delays_by_arrival_period,
    relative_metrics,
)


def dep(arrived, delay, shed=False):
    return Departure(arrived=arrived, departed=arrived + delay, shed=shed)


class TestComputeQos:
    def test_counts_violations(self):
        deps = [dep(0.0, 1.0), dep(1.0, 3.0), dep(2.0, 2.5)]
        q = compute_qos(deps, target=2.0, offered=3)
        assert q.delayed_tuples == 2
        assert q.accumulated_violation == pytest.approx(1.0 + 0.5)
        assert q.max_overshoot == pytest.approx(1.0)
        assert q.delivered == 3

    def test_shed_tuples_excluded_from_delay(self):
        deps = [dep(0.0, 10.0, shed=True), dep(0.0, 1.0)]
        q = compute_qos(deps, target=2.0, offered=2)
        assert q.delayed_tuples == 0
        assert q.shed == 1
        assert q.loss_ratio == 0.5

    def test_mean_delay_over_delivered_only(self):
        deps = [dep(0.0, 1.0), dep(0.0, 3.0), dep(0.0, 99.0, shed=True)]
        q = compute_qos(deps, target=10.0, offered=3)
        assert q.mean_delay == pytest.approx(2.0)

    def test_time_varying_target(self):
        """A tuple is judged against the target when it *arrived* (Fig. 18)."""
        schedule = lambda t: 1.0 if t < 10 else 5.0
        deps = [dep(5.0, 2.0), dep(15.0, 2.0)]
        q = compute_qos(deps, target=schedule, offered=2)
        assert q.delayed_tuples == 1  # only the first violates its 1 s target

    def test_empty_run(self):
        q = compute_qos([], target=2.0, offered=0)
        assert q.delivered == 0
        assert q.loss_ratio == 0.0
        assert q.violation_ratio == 0.0
        assert q.mean_delay == 0.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            compute_qos([], target=-1.0, offered=0)
        with pytest.raises(ExperimentError):
            compute_qos([], target=2.0, offered=-1)

    def test_violation_ratio(self):
        deps = [dep(0.0, 3.0), dep(0.0, 1.0), dep(0.0, 1.0), dep(0.0, 1.0)]
        q = compute_qos(deps, target=2.0, offered=4)
        assert q.violation_ratio == 0.25


class TestRelativeMetrics:
    def test_ratios(self):
        a = compute_qos([dep(0.0, 4.0)], 2.0, 1)
        b = compute_qos([dep(0.0, 3.0)], 2.0, 1)
        rel = relative_metrics(a, b)
        assert rel["accumulated_violation"] == pytest.approx(2.0)
        assert rel["max_overshoot"] == pytest.approx(2.0)

    def test_zero_reference_gives_inf_or_one(self):
        zero = compute_qos([], 2.0, 0)
        some = compute_qos([dep(0.0, 4.0)], 2.0, 1)
        rel = relative_metrics(some, zero)
        assert rel["accumulated_violation"] == float("inf")
        rel2 = relative_metrics(zero, zero)
        assert rel2["accumulated_violation"] == 1.0


class TestDelaysByArrivalPeriod:
    def test_grouping(self):
        deps = [dep(0.1, 1.0), dep(0.9, 3.0), dep(2.5, 5.0)]
        y = delays_by_arrival_period(deps, period=1.0)
        assert y[0] == pytest.approx(2.0)  # mean of 1.0 and 3.0
        assert y[1] == 0.0                 # no arrivals in period 1
        assert y[2] == pytest.approx(5.0)

    def test_shed_excluded(self):
        deps = [dep(0.1, 1.0), dep(0.2, 9.0, shed=True)]
        y = delays_by_arrival_period(deps, period=1.0)
        assert y[0] == pytest.approx(1.0)

    def test_empty(self):
        assert delays_by_arrival_period([], period=1.0) == []

    def test_period_validation(self):
        with pytest.raises(ExperimentError):
            delays_by_arrival_period([], period=0.0)


@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=100),
    st.floats(min_value=0, max_value=50)), min_size=0, max_size=50),
    st.floats(min_value=0.1, max_value=10))
def test_accumulated_violation_nonnegative_and_bounded(pairs, target):
    deps = [dep(a, d) for a, d in pairs]
    q = compute_qos(deps, target=target, offered=len(deps))
    assert q.accumulated_violation >= 0
    assert q.max_overshoot <= max((d for __, d in pairs), default=0.0)
    assert q.delayed_tuples <= q.delivered
