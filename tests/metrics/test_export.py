"""Unit tests for run-record export."""

import csv

import pytest

from repro.dsms import Departure
from repro.errors import ExperimentError
from repro.metrics import PeriodRecord, RunRecord
from repro.metrics.export import (
    PERIOD_FIELDS,
    PeriodJsonlWriter,
    departures_to_csv,
    load_json,
    load_jsonl,
    periods_to_csv,
    periods_to_jsonl,
    record_to_json,
    trace_to_json,
)


def sample_record():
    rec = RunRecord(period=1.0)
    for k in range(3):
        rec.add(
            PeriodRecord(
                k=k, time=float(k + 1), target=2.0, delay_estimate=1.5 + k,
                queue_length=100 * k, cost=0.005, inflow_rate=200.0,
                outflow_rate=180.0, offered=200, admitted=180, shed_retro=0,
                v=180.0, u=0.0, error=0.5 - k, alpha=0.1,
            ),
            [Departure(float(k), float(k) + 1.2, False)],
        )
    rec.departures.append(Departure(2.5, 3.0, True))
    rec.offered_total = 600
    rec.duration = 3.0
    return rec


class TestCsvExport:
    def test_periods_roundtrip(self, tmp_path):
        rec = sample_record()
        path = periods_to_csv(rec, tmp_path / "periods.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(PERIOD_FIELDS)
        assert len(rows) == 4
        assert rows[1][0] == "0"
        assert float(rows[3][3]) == pytest.approx(3.5)  # delay_estimate k=2

    def test_departures_roundtrip(self, tmp_path):
        rec = sample_record()
        path = departures_to_csv(rec, tmp_path / "deps.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["arrived", "departed", "delay", "shed"]
        assert len(rows) == 5
        assert rows[-1][3] == "1"  # the shed tuple


class TestJsonExport:
    def test_summary_fields(self, tmp_path):
        rec = sample_record()
        path = record_to_json(rec, tmp_path / "run.json")
        doc = load_json(path)
        assert doc["offered_total"] == 600
        # the departure at t = 3.2 falls outside the 3 s window
        assert doc["qos"]["delivered"] == 2
        assert doc["qos"]["shed"] == 1
        assert len(doc["periods"]) == 3
        assert len(doc["true_delays"]) >= 3
        assert "departures" not in doc

    def test_departures_opt_in(self, tmp_path):
        rec = sample_record()
        path = record_to_json(rec, tmp_path / "run.json",
                              include_departures=True)
        doc = load_json(path)
        assert len(doc["departures"]) == 4

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_json(tmp_path / "nope.json")


class TestJsonlExport:
    def test_periods_roundtrip(self, tmp_path):
        rec = sample_record()
        path = periods_to_jsonl(rec, tmp_path / "periods.jsonl")
        rows = load_jsonl(path)
        assert len(rows) == 3
        # every canonical column survives with its value and type intact
        for row, p in zip(rows, rec.periods):
            assert row == {f: getattr(p, f) for f in PERIOD_FIELDS}

    def test_jsonl_matches_csv_columns(self, tmp_path):
        rec = sample_record()
        csv_path = periods_to_csv(rec, tmp_path / "periods.csv")
        jsonl_path = periods_to_jsonl(rec, tmp_path / "periods.jsonl")
        with csv_path.open() as fh:
            csv_rows = list(csv.reader(fh))
        jsonl_rows = load_jsonl(jsonl_path)
        assert csv_rows[0] == list(jsonl_rows[0].keys())
        for csv_row, json_row in zip(csv_rows[1:], jsonl_rows):
            for field, text in zip(PERIOD_FIELDS, csv_row):
                assert float(text) == pytest.approx(float(json_row[field]))

    def test_streaming_writer_appends_mid_run(self, tmp_path):
        rec = sample_record()
        path = tmp_path / "live.jsonl"
        with PeriodJsonlWriter(path) as writer:
            writer.append(rec.periods[0])
            # rows are flushed immediately: readable before close
            assert len(load_jsonl(path)) == 1
            for p in rec.periods[1:]:
                writer.append(p)
            assert writer.rows == 3
        assert load_jsonl(path) == load_jsonl(
            periods_to_jsonl(rec, tmp_path / "ref.jsonl"))

    def test_load_tolerates_torn_tail(self, tmp_path):
        rec = sample_record()
        path = periods_to_jsonl(rec, tmp_path / "periods.jsonl")
        with path.open("a") as fh:
            fh.write('{"k": 3, "time":')  # in-flight partial row
        rows = load_jsonl(path)
        assert [r["k"] for r in rows] == [0, 1, 2]

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_jsonl(tmp_path / "nope.jsonl")


class TestTraceExport:
    def test_flame_roundtrip(self, tmp_path):
        from repro.obs import PeriodTracer

        tracer = PeriodTracer()
        tracer.begin_period(0)
        tracer.add("engine", 0.3)
        tracer.add("monitor", 0.1)
        tracer.end_period()
        tracer.wall_seconds = 0.5
        path = trace_to_json(tracer.flame(), tmp_path / "trace.json")
        doc = load_json(path)
        assert doc["segments"]["engine"] == pytest.approx(0.3)
        assert doc["total_seconds"] == pytest.approx(0.4)
        assert doc["coverage"] == pytest.approx(0.8)
        assert doc["periods"] == 1
