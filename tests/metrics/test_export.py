"""Unit tests for run-record export."""

import csv

import pytest

from repro.dsms import Departure
from repro.errors import ExperimentError
from repro.metrics import PeriodRecord, RunRecord
from repro.metrics.export import (
    PERIOD_FIELDS,
    departures_to_csv,
    load_json,
    periods_to_csv,
    record_to_json,
)


def sample_record():
    rec = RunRecord(period=1.0)
    for k in range(3):
        rec.add(
            PeriodRecord(
                k=k, time=float(k + 1), target=2.0, delay_estimate=1.5 + k,
                queue_length=100 * k, cost=0.005, inflow_rate=200.0,
                outflow_rate=180.0, offered=200, admitted=180, shed_retro=0,
                v=180.0, u=0.0, error=0.5 - k, alpha=0.1,
            ),
            [Departure(float(k), float(k) + 1.2, False)],
        )
    rec.departures.append(Departure(2.5, 3.0, True))
    rec.offered_total = 600
    rec.duration = 3.0
    return rec


class TestCsvExport:
    def test_periods_roundtrip(self, tmp_path):
        rec = sample_record()
        path = periods_to_csv(rec, tmp_path / "periods.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(PERIOD_FIELDS)
        assert len(rows) == 4
        assert rows[1][0] == "0"
        assert float(rows[3][3]) == pytest.approx(3.5)  # delay_estimate k=2

    def test_departures_roundtrip(self, tmp_path):
        rec = sample_record()
        path = departures_to_csv(rec, tmp_path / "deps.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["arrived", "departed", "delay", "shed"]
        assert len(rows) == 5
        assert rows[-1][3] == "1"  # the shed tuple


class TestJsonExport:
    def test_summary_fields(self, tmp_path):
        rec = sample_record()
        path = record_to_json(rec, tmp_path / "run.json")
        doc = load_json(path)
        assert doc["offered_total"] == 600
        # the departure at t = 3.2 falls outside the 3 s window
        assert doc["qos"]["delivered"] == 2
        assert doc["qos"]["shed"] == 1
        assert len(doc["periods"]) == 3
        assert len(doc["true_delays"]) >= 3
        assert "departures" not in doc

    def test_departures_opt_in(self, tmp_path):
        rec = sample_record()
        path = record_to_json(rec, tmp_path / "run.json",
                              include_departures=True)
        doc = load_json(path)
        assert len(doc["departures"]) == 4

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_json(tmp_path / "nope.json")
