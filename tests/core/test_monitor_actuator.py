"""Unit tests for the monitor and the actuators."""

import random

import pytest

from repro.core import (
    DsmsModel,
    EntryActuator,
    EwmaEstimator,
    InNetworkActuator,
    Monitor,
)
from repro.dsms import Engine, identification_network
from repro.errors import SheddingError
from repro.shedding import EntryShedder, LsrmShedder, QueueShedder


def make_engine(seed=0):
    return Engine(identification_network(), headroom=0.97,
                  rng=random.Random(seed))


def feed(engine, rate, start, duration, seed=0):
    rng = random.Random(seed)
    for k in range(int(duration)):
        for i in range(int(rate)):
            engine.submit(start + k + i / rate,
                          tuple(rng.random() for _ in range(4)), "src")


class TestMonitor:
    def test_first_measurement(self):
        eng = make_engine()
        model = DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)
        mon = Monitor(eng, model)
        feed(eng, 100, 0.0, 1)
        eng.run_until(1.0)
        m = mon.measure()
        assert m.k == 0
        assert m.admitted == 100
        assert m.inflow_rate == pytest.approx(100, abs=2)
        assert m.queue_length == eng.outstanding

    def test_delay_estimate_uses_eq11(self):
        eng = make_engine()
        model = DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)
        mon = Monitor(eng, model)
        feed(eng, 400, 0.0, 2)
        eng.run_until(2.0)
        m = mon.measure()
        assert m.delay_estimate == pytest.approx(
            (m.queue_length + 1) * m.cost / 0.97
        )

    def test_period_index_increments(self):
        eng = make_engine()
        model = DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)
        mon = Monitor(eng, model)
        eng.run_until(1.0)
        assert mon.measure().k == 0
        eng.run_until(2.0)
        assert mon.measure().k == 1

    def test_cost_estimator_fed_by_measurement(self):
        eng = make_engine()
        model = DsmsModel(cost=0.002, headroom=0.97, period=1.0)  # wrong prior
        mon = Monitor(eng, model, cost_estimator=EwmaEstimator(0.002, 0.5))
        for k in range(10):
            feed(eng, 100, float(k), 1, seed=k)
            eng.run_until(float(k + 1))
            m = mon.measure()
        # estimate pulled toward the true ~1/190 ≈ 0.00526
        assert m.cost == pytest.approx(1 / 190, rel=0.15)

    def test_departures_delivered_once(self):
        eng = make_engine()
        model = DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)
        mon = Monitor(eng, model)
        feed(eng, 50, 0.0, 1)
        eng.run_until(1.0)
        m1 = mon.measure()
        eng.run_until(2.0)
        m2 = mon.measure()
        assert len(m1.departures) + len(m2.departures) == 50
        assert m2.departures == [] or m1.departures != m2.departures


class TestEntryActuator:
    def test_unarmed_admits_everything(self):
        act = EntryActuator()
        act.begin_period(float("inf"), 0.0)
        assert all(act.admit() for _ in range(50))

    def test_allowance_sets_drop_rate(self):
        act = EntryActuator(EntryShedder(random.Random(0)))
        act.begin_period(50.0, 200.0)  # alpha = 0.75
        admitted = sum(1 for _ in range(4000) if act.admit())
        assert admitted / 4000 == pytest.approx(0.25, abs=0.03)

    def test_counters_track_offers_and_drops(self):
        act = EntryActuator(EntryShedder(random.Random(0)))
        act.begin_period(0.0, 100.0)  # drop everything
        for _ in range(100):
            act.admit()
        assert act.offered_total == 100
        assert act.dropped_total == 100
        assert act.loss_ratio == 1.0

    def test_end_period_is_noop(self):
        act = EntryActuator()
        assert act.end_period(100) == 0

    def test_alpha_exposed(self):
        act = EntryActuator(EntryShedder(random.Random(0)))
        act.begin_period(100.0, 200.0)
        assert act.alpha == pytest.approx(0.5)


class TestInNetworkActuator:
    def _loaded(self, seed=1):
        eng = make_engine(seed)
        feed(eng, 400, 0.0, 3, seed=seed)
        eng.run_until(3.0)
        return eng

    def test_admit_always_true(self):
        eng = self._loaded()
        act = InNetworkActuator(QueueShedder(eng, random.Random(0)))
        act.begin_period(10.0, 100.0)
        assert all(act.admit() for _ in range(20))

    def test_surplus_culled_at_boundary(self):
        eng = self._loaded()
        backlog = eng.queued_tuples
        act = InNetworkActuator(QueueShedder(eng, random.Random(0)))
        act.begin_period(100.0, 400.0)
        shed = act.end_period(admitted=400)
        assert shed == 300
        assert eng.queued_tuples == backlog - 300
        assert act.dropped_total == 300

    def test_no_surplus_no_shedding(self):
        eng = self._loaded()
        act = InNetworkActuator(QueueShedder(eng, random.Random(0)))
        act.begin_period(500.0, 400.0)
        assert act.end_period(admitted=400) == 0

    def test_negative_allowance_clamped(self):
        eng = self._loaded()
        act = InNetworkActuator(QueueShedder(eng, random.Random(0)))
        act.begin_period(-50.0, 400.0)
        shed = act.end_period(admitted=100)
        assert shed == 100  # everything admitted this period is culled

    def test_negative_admitted_rejected(self):
        eng = self._loaded()
        act = InNetworkActuator(QueueShedder(eng, random.Random(0)))
        act.begin_period(10.0, 10.0)
        with pytest.raises(SheddingError):
            act.end_period(admitted=-1)

    def test_works_with_lsrm(self):
        eng = self._loaded()
        act = InNetworkActuator(LsrmShedder(eng, random.Random(0)))
        act.begin_period(100.0, 400.0)
        assert act.end_period(admitted=400) == 300
