"""Unit tests for the adaptive-control extension."""

import pytest

from repro.core import AdaptiveController, DsmsModel, RlsGainEstimator
from repro.core.monitor import Measurement
from repro.errors import ControlError


def model(cost=1 / 190):
    return DsmsModel(cost=cost, headroom=0.97, period=1.0)


def measurement(q, cost=1 / 190, fout=184.0, k=0):
    m = model(cost)
    return Measurement(
        k=k, time=float(k), queue_length=q, cost=cost, measured_cost=cost,
        inflow_rate=200.0, outflow_rate=fout,
        delay_estimate=m.delay_estimate(q, cost),
        admitted=200, departed=int(fout), shed=0, departures=[],
    )


class TestRlsGainEstimator:
    def test_validation(self):
        with pytest.raises(ControlError):
            RlsGainEstimator(0.0)
        with pytest.raises(ControlError):
            RlsGainEstimator(1.0, forgetting=0.4)
        with pytest.raises(ControlError):
            RlsGainEstimator(1.0, initial_covariance=0.0)

    def test_learns_a_constant_gain(self):
        est = RlsGainEstimator(initial_gain=1.0, min_excitation=0.1)
        true_gain = 0.0054
        for u in (50, -30, 80, -60, 40, 90, -20, 70, -50, 30) * 5:
            est.update(float(u), true_gain * u)
        assert est.gain == pytest.approx(true_gain, rel=0.02)
        assert est.updates > 0

    def test_skips_low_excitation(self):
        est = RlsGainEstimator(initial_gain=1.0, min_excitation=10.0)
        est.update(0.5, 42.0)  # |u| below the excitation threshold
        assert est.gain == 1.0
        assert est.updates == 0

    def test_rejects_nonpositive_gain_updates(self):
        est = RlsGainEstimator(initial_gain=0.01, min_excitation=0.1)
        # a wildly inconsistent observation that would drive gain negative
        est.update(1.0, -100.0)
        assert est.gain > 0

    def test_forgetting_tracks_drift(self):
        est = RlsGainEstimator(initial_gain=0.005, forgetting=0.9,
                               min_excitation=0.1)
        for k in range(200):
            gain = 0.005 if k < 100 else 0.010
            u = 50.0 if k % 2 == 0 else -50.0
            est.update(u, gain * u)
        assert est.gain == pytest.approx(0.010, rel=0.05)


class TestAdaptiveController:
    def test_negative_target_rejected(self):
        with pytest.raises(ControlError):
            AdaptiveController(model()).decide(measurement(0), -1.0)

    def test_first_decision_uses_prior_gain(self):
        ctrl = AdaptiveController(model())
        d = ctrl.decide(measurement(0), 2.0)
        # identical to the fixed-gain controller's first step
        e = 2.0 - measurement(0).delay_estimate
        assert d.u == pytest.approx((1 / ctrl.model.gain) * 0.4 * e)

    def test_identifies_effective_loop_gain(self):
        """RLS learns the *effective* gain of the ŷ dynamics.

        The feedback signal is built from the same cost estimate the
        controller would use, so the informative deviation is actuator
        effectiveness: here the actuator only realizes 70% of each
        commanded queue change, and the identified gain must converge to
        0.7x the model prior.
        """
        ctrl = AdaptiveController(model(), min_excitation=1.0)
        nominal_gain = ctrl.model.gain
        effectiveness = 0.7
        q = 200.0
        ctrl.decide(measurement(int(q)), 2.0)
        for k in range(1, 200):
            q = max(0.0, q + effectiveness * ctrl._u_prev)
            ctrl.decide(measurement(int(q), k=k), 2.0)
        assert ctrl.estimator.updates > 10
        assert ctrl.estimator.gain == pytest.approx(
            effectiveness * nominal_gain, rel=0.25
        )

    def test_reset(self):
        ctrl = AdaptiveController(model())
        ctrl.decide(measurement(100), 2.0)
        ctrl.decide(measurement(300, k=1), 2.0)
        ctrl.reset()
        assert ctrl.estimator.updates == 0
        assert ctrl._y_prev is None
