"""Unit tests for cost estimators."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    EwmaEstimator,
    KalmanCostEstimator,
    LastValueEstimator,
    WindowMedianEstimator,
)
from repro.errors import ControlError


class TestCommonBehaviour:
    @pytest.mark.parametrize("cls", [
        LastValueEstimator,
        EwmaEstimator,
        WindowMedianEstimator,
        KalmanCostEstimator,
    ])
    def test_initial_must_be_positive(self, cls):
        with pytest.raises(ControlError):
            cls(0.0)

    @pytest.mark.parametrize("cls", [
        LastValueEstimator,
        EwmaEstimator,
        WindowMedianEstimator,
        KalmanCostEstimator,
    ])
    def test_none_measurement_coasts(self, cls):
        est = cls(0.005)
        assert est.update(None) == 0.005
        assert est.estimate == 0.005

    @pytest.mark.parametrize("cls", [
        LastValueEstimator,
        EwmaEstimator,
        WindowMedianEstimator,
        KalmanCostEstimator,
    ])
    def test_degenerate_measurements_ignored(self, cls):
        est = cls(0.005)
        est.update(-1.0)
        est.update(0.0)
        est.update(float("nan"))
        est.update(float("inf"))
        assert est.estimate == 0.005

    @pytest.mark.parametrize("cls", [
        LastValueEstimator,
        EwmaEstimator,
        WindowMedianEstimator,
        KalmanCostEstimator,
    ])
    def test_converges_to_constant_signal(self, cls):
        est = cls(0.005)
        for _ in range(500):
            est.update(0.010)
        assert est.estimate == pytest.approx(0.010, rel=0.01)


class TestLastValue:
    def test_tracks_immediately(self):
        est = LastValueEstimator(0.005)
        assert est.update(0.02) == 0.02


class TestEwma:
    def test_alpha_validation(self):
        with pytest.raises(ControlError):
            EwmaEstimator(0.005, alpha=0.0)
        with pytest.raises(ControlError):
            EwmaEstimator(0.005, alpha=1.5)

    def test_single_step_blend(self):
        est = EwmaEstimator(0.010, alpha=0.25)
        assert est.update(0.020) == pytest.approx(0.25 * 0.020 + 0.75 * 0.010)

    def test_alpha_one_is_last_value(self):
        est = EwmaEstimator(0.005, alpha=1.0)
        assert est.update(0.123) == pytest.approx(0.123)

    def test_smooths_noise(self):
        rng = random.Random(0)
        est = EwmaEstimator(0.005, alpha=0.1)
        values = []
        for _ in range(300):
            values.append(est.update(0.005 * (1 + rng.uniform(-0.5, 0.5))))
        tail = values[100:]
        spread = max(tail) - min(tail)
        assert spread < 0.005 * 0.5  # much tighter than the raw ±50%


class TestWindowMedian:
    def test_window_validation(self):
        with pytest.raises(ControlError):
            WindowMedianEstimator(0.005, window=0)

    def test_median_of_odd_window(self):
        est = WindowMedianEstimator(0.005, window=3)
        est.update(0.001)
        est.update(0.010)
        assert est.update(0.002) == pytest.approx(0.002)

    def test_median_of_even_count(self):
        est = WindowMedianEstimator(0.005, window=4)
        est.update(0.002)
        assert est.update(0.004) == pytest.approx(0.003)

    def test_spike_rejection(self):
        est = WindowMedianEstimator(0.005, window=5)
        for _ in range(5):
            est.update(0.005)
        est.update(1.0)  # one wild outlier
        assert est.estimate == pytest.approx(0.005)


class TestKalman:
    def test_variance_validation(self):
        with pytest.raises(ControlError):
            KalmanCostEstimator(0.005, process_var=0.0)
        with pytest.raises(ControlError):
            KalmanCostEstimator(0.005, measurement_var=-1.0)
        with pytest.raises(ControlError):
            KalmanCostEstimator(0.005, initial_var=0.0)

    def test_variance_shrinks_with_data(self):
        est = KalmanCostEstimator(0.005)
        v0 = est.variance
        for _ in range(50):
            est.update(0.005)
        assert est.variance < v0

    def test_gain_between_zero_and_one(self):
        est = KalmanCostEstimator(0.005)
        for _ in range(20):
            est.update(0.006)
            assert 0.0 < est.kalman_gain < 1.0

    def test_tracks_slow_drift(self):
        est = KalmanCostEstimator(0.005, process_var=1e-7,
                                  measurement_var=1e-6)
        target = 0.005
        for k in range(400):
            target = 0.005 * (1 + k / 400)  # slow doubling
            est.update(target)
        assert est.estimate == pytest.approx(target, rel=0.05)

    def test_more_noise_rejection_than_last_value(self):
        rng = random.Random(1)
        kalman = KalmanCostEstimator(0.005, process_var=1e-9,
                                     measurement_var=1e-5)
        errors_k, errors_lv = [], []
        lv = LastValueEstimator(0.005)
        for _ in range(300):
            noisy = 0.005 + rng.gauss(0, 0.002)
            errors_k.append(abs(kalman.update(noisy) - 0.005))
            errors_lv.append(abs(lv.update(noisy) - 0.005))
        assert sum(errors_k) < 0.5 * sum(errors_lv)


@given(st.lists(st.floats(min_value=1e-5, max_value=1.0), min_size=1,
                max_size=100))
def test_ewma_stays_within_observed_range(values):
    est = EwmaEstimator(values[0], alpha=0.3)
    for v in values:
        est.update(v)
    assert min(values) - 1e-12 <= est.estimate <= max(values) + 1e-12
