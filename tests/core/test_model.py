"""Unit tests for the DSMS dynamic model (Eq. 2/4/11)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import DsmsModel
from repro.errors import ControlError


def paper_model():
    return DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)


class TestValidation:
    def test_positive_cost_required(self):
        with pytest.raises(ControlError):
            DsmsModel(cost=0.0, headroom=0.97, period=1.0)

    def test_headroom_range(self):
        with pytest.raises(ControlError):
            DsmsModel(cost=0.005, headroom=0.0, period=1.0)
        with pytest.raises(ControlError):
            DsmsModel(cost=0.005, headroom=1.2, period=1.0)

    def test_positive_period_required(self):
        with pytest.raises(ControlError):
            DsmsModel(cost=0.005, headroom=0.97, period=0.0)


class TestEq11:
    def test_empty_queue_delay_is_one_service_time(self):
        m = paper_model()
        assert m.delay_estimate(0) == pytest.approx((1 / 190) / 0.97)

    def test_delay_scales_linearly_with_queue(self):
        m = paper_model()
        y1 = m.delay_estimate(100)
        y2 = m.delay_estimate(200)
        assert (y2 - y1) == pytest.approx(100 * (1 / 190) / 0.97)

    def test_cost_override(self):
        m = paper_model()
        assert m.delay_estimate(10, cost=0.01) == pytest.approx(11 * 0.01 / 0.97)

    def test_negative_queue_rejected(self):
        with pytest.raises(ControlError):
            paper_model().delay_estimate(-1)

    def test_queue_for_delay_inverts(self):
        m = paper_model()
        for q in (0, 10, 377, 1000):
            assert m.queue_for_delay(m.delay_estimate(q)) == pytest.approx(q, abs=1e-6)

    def test_queue_for_delay_clamps_at_zero(self):
        assert paper_model().queue_for_delay(0.0) == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ControlError):
            paper_model().queue_for_delay(-1.0)

    def test_paper_operating_point(self):
        """yd = 2 s at c = 5.26 ms, H = 0.97 -> ~368 outstanding tuples."""
        m = paper_model()
        assert m.queue_for_delay(2.0) == pytest.approx(2.0 * 0.97 * 190 - 1, rel=1e-6)


class TestPlant:
    def test_service_rate_is_l0(self):
        m = paper_model()
        assert m.service_rate() == pytest.approx(0.97 * 190)

    def test_gain(self):
        m = paper_model()
        assert m.gain == pytest.approx((1 / 190) * 1.0 / 0.97)

    def test_plant_is_integrator(self):
        g = paper_model().plant()
        assert g.poles().real.tolist() == pytest.approx([1.0])

    def test_with_cost_returns_new_model(self):
        m = paper_model()
        m2 = m.with_cost(0.01)
        assert m2.cost == 0.01
        assert m.cost == 1 / 190  # frozen original unchanged

    def test_with_period(self):
        assert paper_model().with_period(0.5).period == 0.5


@given(q=st.integers(min_value=0, max_value=100_000),
       c=st.floats(min_value=1e-5, max_value=0.1),
       h=st.floats(min_value=0.1, max_value=1.0))
def test_delay_estimate_roundtrip_property(q, c, h):
    m = DsmsModel(cost=c, headroom=h, period=1.0)
    assert m.queue_for_delay(m.delay_estimate(q)) == pytest.approx(q, rel=1e-9, abs=1e-6)
