"""Unit tests for the CTRL/BASELINE/AURORA decision laws."""

import pytest

from repro.core import (
    AuroraOpenLoopController,
    BaselineController,
    DsmsModel,
    Measurement,
    PolePlacementController,
)
from repro.errors import ControlError


def model():
    return DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)


def measurement(q=0, cost=1 / 190, fin=200.0, fout=184.0, k=0):
    m = model()
    return Measurement(
        k=k, time=float(k), queue_length=q, cost=cost, measured_cost=cost,
        inflow_rate=fin, outflow_rate=fout,
        delay_estimate=m.delay_estimate(q, cost),
        admitted=int(fin), departed=int(fout), shed=0, departures=[],
    )


class TestPolePlacement:
    def test_eq10_first_step(self):
        """With zero history, u(0) = H/(cT) * b0 * e(0)."""
        ctrl = PolePlacementController(model())
        m = measurement(q=0)
        d = ctrl.decide(m, target=2.0)
        e = 2.0 - m.delay_estimate
        expected_u = 0.97 * 190 * 0.4 * e
        assert d.u == pytest.approx(expected_u)
        assert d.v == pytest.approx(expected_u + m.outflow_rate)

    def test_eq10_recursion(self):
        """Second step uses b1 e(k-1) and -a u(k-1)."""
        ctrl = PolePlacementController(model())
        m1 = measurement(q=0)
        d1 = ctrl.decide(m1, 2.0)
        m2 = measurement(q=500, k=1)
        d2 = ctrl.decide(m2, 2.0)
        e1 = 2.0 - m1.delay_estimate
        e2 = 2.0 - m2.delay_estimate
        gain = 0.97 * 190
        expected = gain * (0.4 * e2 - 0.31 * e1) + 0.8 * d1.u
        assert d2.u == pytest.approx(expected)

    def test_overloaded_queue_drives_shedding(self):
        """q far above target -> desired admissions below the service rate."""
        ctrl = PolePlacementController(model())
        m = measurement(q=2000)  # ŷ ≈ 10.9 s, way above 2 s
        d = ctrl.decide(m, 2.0)
        assert d.v < m.outflow_rate

    def test_underloaded_queue_admits_more(self):
        ctrl = PolePlacementController(model())
        d = ctrl.decide(measurement(q=0), 2.0)
        assert d.v > measurement().outflow_rate

    def test_gain_rescales_with_cost(self):
        """Time-varying c: doubled cost halves the H/(cT) gain."""
        c1 = PolePlacementController(model())
        c2 = PolePlacementController(model())
        d1 = c1.decide(measurement(q=0, cost=1 / 190), 2.0)
        d2 = c2.decide(measurement(q=0, cost=2 / 190), 2.0)
        # same error in *queue* units would give half the u; here error in
        # seconds also changes, so just check monotonicity of the gain
        assert d2.u < d1.u

    def test_negative_target_rejected(self):
        with pytest.raises(ControlError):
            PolePlacementController(model()).decide(measurement(), -1.0)

    def test_reset_clears_state(self):
        ctrl = PolePlacementController(model())
        ctrl.decide(measurement(q=100), 2.0)
        ctrl.reset()
        d = ctrl.decide(measurement(q=0), 2.0)
        e = 2.0 - measurement(q=0).delay_estimate
        assert d.u == pytest.approx(0.97 * 190 * 0.4 * e)

    def test_anti_windup_limits_state(self):
        """During deep saturation the wound-up state must stay bounded by
        what the actuator can realize."""
        plain = PolePlacementController(model())
        aw = PolePlacementController(model(), anti_windup=True)
        # sustained huge overload: v would go very negative, actuator
        # saturates at 0 admissions
        for k in range(20):
            m = measurement(q=20000, fin=200.0, k=k)
            plain.decide(m, 2.0)
            aw.decide(m, 2.0)
        # when the overload clears, the anti-windup controller recovers
        # admissions faster (its u state is less negative)
        m_clear = measurement(q=300, k=21)
        d_plain = plain.decide(m_clear, 2.0)
        d_aw = aw.decide(m_clear, 2.0)
        assert d_aw.u > d_plain.u


class TestBaseline:
    def test_targets_model_queue(self):
        ctrl = BaselineController(model())
        q_target = 2.0 * 0.97 * 190  # yd H / c
        d = ctrl.decide(measurement(q=0), 2.0)
        assert d.u == pytest.approx(q_target)
        assert d.v == pytest.approx(q_target + 0.97 * 190)

    def test_zero_error_at_target_queue(self):
        ctrl = BaselineController(model())
        q_target = int(2.0 * 0.97 * 190)
        d = ctrl.decide(measurement(q=q_target), 2.0)
        assert abs(d.u) < 1.0
        assert d.v == pytest.approx(0.97 * 190, abs=1.0)

    def test_cost_changes_rescale_target(self):
        ctrl = BaselineController(model())
        d1 = ctrl.decide(measurement(q=0, cost=1 / 190), 2.0)
        d2 = ctrl.decide(measurement(q=0, cost=2 / 190), 2.0)
        assert d2.u == pytest.approx(d1.u / 2)

    def test_negative_target_rejected(self):
        with pytest.raises(ControlError):
            BaselineController(model()).decide(measurement(), -0.1)


class TestAurora:
    def test_admits_capacity_regardless_of_state(self):
        """Open loop: q plays no role in the decision."""
        ctrl = AuroraOpenLoopController(model())
        d_empty = ctrl.decide(measurement(q=0), 2.0)
        d_full = ctrl.decide(measurement(q=50000), 2.0)
        assert d_empty.v == pytest.approx(d_full.v)
        assert d_empty.v == pytest.approx(0.97 * 190)

    def test_ignores_target(self):
        ctrl = AuroraOpenLoopController(model())
        assert ctrl.decide(measurement(), 1.0).v == \
            pytest.approx(ctrl.decide(measurement(), 5.0).v)

    def test_tracks_cost_estimate(self):
        ctrl = AuroraOpenLoopController(model())
        d = ctrl.decide(measurement(cost=2 / 190), 2.0)
        assert d.v == pytest.approx(0.97 * 190 / 2)

    def test_headroom_override(self):
        ctrl = AuroraOpenLoopController(model(), headroom_override=0.96)
        d = ctrl.decide(measurement(), 2.0)
        assert d.v == pytest.approx(0.96 * 190)

    def test_override_validation(self):
        with pytest.raises(ControlError):
            AuroraOpenLoopController(model(), headroom_override=1.5)

    def test_error_reported_as_zero(self):
        """Open loop has no error signal."""
        assert AuroraOpenLoopController(model()).decide(measurement(q=999), 2.0).error == 0.0
