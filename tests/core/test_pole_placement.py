"""Unit tests for the Appendix-A controller synthesis."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.control import is_stable, step_metrics, step_response
from repro.core import (
    ControllerGains,
    DsmsModel,
    design_gains,
    paper_gains,
    poles_from_specs,
)
from repro.errors import ControlError, UnstableDesignError


def paper_model(cost=1 / 190, period=1.0):
    return DsmsModel(cost=cost, headroom=0.97, period=period)


class TestPaperConstants:
    def test_design_recovers_published_gains(self):
        """poles 0.7/0.7 + controller pole 0.8 -> b0=0.4, b1=-0.31, a=-0.8."""
        g = design_gains(poles=(0.7, 0.7), controller_pole=0.8)
        assert g.b0 == pytest.approx(0.4)
        assert g.b1 == pytest.approx(-0.31)
        assert g.a == pytest.approx(-0.8)

    def test_published_gains_give_published_poles(self):
        p1, p2 = paper_gains().closed_loop_poles()
        assert sorted((p1.real, p2.real)) == pytest.approx([0.7, 0.7], abs=1e-6)
        # np.roots splits an exact double root by ~1e-8
        assert p1.imag == pytest.approx(0.0, abs=1e-6)

    def test_closed_loop_static_gain_unity(self):
        """Eq. 19: y tracks yd exactly in steady state."""
        closed = paper_gains().closed_loop(paper_model())
        assert closed.dc_gain() == pytest.approx(1.0, abs=1e-9)

    def test_closed_loop_stable_for_any_cost(self):
        """Pole locations are independent of c, T, H (the H/cT normalization)."""
        for cost in (0.001, 1 / 190, 0.05):
            for period in (0.1, 1.0, 4.0):
                closed = paper_gains().closed_loop(paper_model(cost, period))
                assert is_stable(closed)
                poles = sorted(abs(p) for p in closed.poles())
                assert poles == pytest.approx([0.7, 0.7], abs=1e-6)


class TestDesignValidation:
    def test_unstable_pole_request_rejected(self):
        with pytest.raises(UnstableDesignError):
            design_gains(poles=(1.1, 0.5))

    def test_unstable_controller_pole_rejected(self):
        with pytest.raises(UnstableDesignError):
            design_gains(controller_pole=1.0)

    def test_non_conjugate_complex_rejected(self):
        with pytest.raises(ControlError):
            design_gains(poles=(0.5 + 0.2j, 0.5 + 0.2j))

    def test_conjugate_pair_accepted(self):
        g = design_gains(poles=(0.6 + 0.2j, 0.6 - 0.2j))
        p1, p2 = g.closed_loop_poles()
        assert sorted((p1.imag, p2.imag)) == pytest.approx([-0.2, 0.2], abs=1e-6)


class TestSpecs:
    def test_three_period_convergence_radius(self):
        p1, p2 = poles_from_specs(convergence_periods=3.0, damping=1.0)
        assert p1 == p2
        assert p1.real == pytest.approx(math.exp(-1 / 3), abs=1e-9)
        assert p1.imag == 0.0

    def test_underdamped_specs_give_conjugates(self):
        p1, p2 = poles_from_specs(convergence_periods=3.0, damping=0.7)
        assert p1.imag == pytest.approx(-p2.imag)
        assert p1.imag != 0.0

    def test_validation(self):
        with pytest.raises(ControlError):
            poles_from_specs(convergence_periods=0.0)
        with pytest.raises(ControlError):
            poles_from_specs(damping=0.0)
        with pytest.raises(ControlError):
            poles_from_specs(damping=1.5)

    def test_aliasing_guard(self):
        with pytest.raises(ControlError):
            poles_from_specs(convergence_periods=0.1, damping=0.05)


class TestClosedLoopBehaviour:
    def test_faster_poles_settle_faster(self):
        slow = design_gains(poles=(0.9, 0.9), controller_pole=0.8)
        fast = design_gains(poles=(0.4, 0.4), controller_pole=0.8)
        model = paper_model()
        ms = step_metrics(step_response(slow.closed_loop(model), 100))
        mf = step_metrics(step_response(fast.closed_loop(model), 100))
        assert mf.settling_index < ms.settling_index

    def test_free_parameter_does_not_move_poles(self):
        """The paper: any solution of Eqs. 18/19 performs the same."""
        for cp in (0.0, 0.3, 0.8, -0.5):
            g = design_gains(poles=(0.7, 0.7), controller_pole=cp)
            p1, p2 = g.closed_loop_poles()
            assert sorted((p1.real, p2.real)) == pytest.approx([0.7, 0.7], abs=1e-6)


@given(p=st.floats(min_value=0.05, max_value=0.95),
       cp=st.floats(min_value=-0.9, max_value=0.9))
def test_design_always_matches_clce(p, cp):
    g = design_gains(poles=(p, p), controller_pole=cp)
    r1, r2 = g.closed_loop_poles()
    assert sorted((r1.real, r2.real)) == pytest.approx([p, p], abs=1e-6)
    # static-gain identity (Eq. 19) holds across the whole family
    assert g.b0 + g.b1 == pytest.approx((1 - p) ** 2, abs=1e-9)
