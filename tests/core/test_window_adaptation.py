"""Tests for window-size adaptation (the paper's adaptation (iii))."""

import random

import pytest

from repro.core import (
    ControlLoop,
    DsmsModel,
    EwmaEstimator,
    Monitor,
    PolePlacementController,
    WindowAdaptationActuator,
)
from repro.dsms import (
    Engine,
    MapOperator,
    QueryNetwork,
    Sink,
    WindowJoinOperator,
    make_source_tuple,
)
from repro.errors import NetworkError, SheddingError


def join_network(base_cost, scan_cost, window=4.0):
    net = QueryNetwork("join-net")
    net.add_source("left")
    net.add_source("right")
    net.add_operator(MapOperator("pre_l", base_cost / 4), ["left"])
    net.add_operator(MapOperator("pre_r", base_cost / 4), ["right"])
    join = WindowJoinOperator("join", base_cost / 2, window,
                              key=lambda v: v[0] % 7,
                              scan_cost=scan_cost)
    net.add_operator(join, ["pre_l", "pre_r"])
    net.add_operator(Sink("out"), ["join"])
    return net, join


class TestJoinCostModel:
    def test_scan_cost_grows_with_window_occupancy(self):
        __, join = join_network(0.001, scan_cost=0.0001)
        t = make_source_tuple((1,), 0.0)
        base = join.cost_of(t, 0)
        for i in range(10):
            join.apply(make_source_tuple((i,), 0.0), 1, 0.0)
        assert join.cost_of(t, 0) == pytest.approx(base + 10 * 0.0001)

    def test_scale_shrinks_time_window(self):
        __, join = join_network(0.001, scan_cost=0.0001, window=10.0)
        # fill the right window across 10 seconds
        for i in range(10):
            join.apply(make_source_tuple((i,), float(i)), 1, float(i))
        join.window_scale = 0.3  # effective window: 3 s
        out = join.apply(make_source_tuple((3,), 10.0), 0, 10.0)
        # only matches newer than t = 7 can survive
        assert all(v[-1] >= 7.0 or True for v in (o.values for o in out))
        assert len(join.windows[1]) <= 3

    def test_scale_validation(self):
        __, join = join_network(0.001, 0.0001)
        with pytest.raises(NetworkError):
            join.window_scale = 0.0
        with pytest.raises(NetworkError):
            join.window_scale = 1.2
        with pytest.raises(NetworkError):
            WindowJoinOperator("j", 0.001, 1.0, key=lambda v: v,
                               scan_cost=-1.0)

    def test_reset_restores_nominal_window(self):
        __, join = join_network(0.001, 0.0001, window=5.0)
        join.window_scale = 0.2
        join.reset()
        assert join.window_scale == 1.0
        assert join.windows[0].size == 5.0


class TestActuator:
    def make(self, **kw):
        __, join = join_network(0.002, 0.0001)
        defaults = dict(fixed_cost=0.002, join_cost_full=0.004,
                        min_scale=0.1, rng=random.Random(0))
        defaults.update(kw)
        return WindowAdaptationActuator([join], **defaults), join

    def test_validation(self):
        __, join = join_network(0.002, 0.0001)
        with pytest.raises(SheddingError):
            WindowAdaptationActuator([], fixed_cost=1.0, join_cost_full=1.0)
        with pytest.raises(SheddingError):
            WindowAdaptationActuator([join], fixed_cost=0.0,
                                     join_cost_full=1.0)
        with pytest.raises(SheddingError):
            WindowAdaptationActuator([join], fixed_cost=1.0,
                                     join_cost_full=1.0, min_scale=0.0)

    def test_no_pressure_keeps_full_windows(self):
        act, join = self.make()
        act.begin_period(allowed_tuples=300.0, expected_inflow=200.0)
        assert join.window_scale == 1.0
        assert act.alpha == 0.0
        assert act.admit()

    def test_mild_pressure_shrinks_windows_without_loss(self):
        act, join = self.make()
        # need 80% of the load: c(s) = 0.8 * c(1) -> s = (0.0048-0.002)/0.004
        act.begin_period(allowed_tuples=160.0, expected_inflow=200.0)
        assert join.window_scale == pytest.approx(0.7, abs=0.01)
        assert act.alpha == 0.0

    def test_extreme_pressure_bottoms_out_and_sheds(self):
        act, join = self.make()
        act.begin_period(allowed_tuples=20.0, expected_inflow=200.0)
        assert join.window_scale == pytest.approx(0.1)
        assert act.alpha > 0.5
        drops = sum(1 for _ in range(2000) if not act.admit())
        assert drops / 2000 == pytest.approx(act.alpha, abs=0.04)

    def test_idle_input_restores_windows(self):
        act, join = self.make()
        act.begin_period(20.0, 200.0)
        assert join.window_scale < 1.0
        act.begin_period(100.0, 0.0)
        assert join.window_scale == 1.0


class TestClosedLoop:
    def test_loop_regulates_via_windows_with_low_data_loss(self):
        """Under moderate overload the windows absorb it: delay holds at
        the target with far less tuple loss than drop-based shedding."""
        base, scan = 0.002, 0.00005
        net, join = join_network(base, scan, window=6.0)
        engine = Engine(net, headroom=0.97, rng=random.Random(1))
        # expected cost at scale 1 with ~150/s per side in a 6 s window:
        # opposite window holds ~900 tuples -> scan ~0.045 s?? too big;
        # keep rates low so the numbers stay sane
        model = DsmsModel(cost=0.004, headroom=0.97, period=1.0)
        monitor = Monitor(engine, model,
                          cost_estimator=EwmaEstimator(0.004, 0.3))
        actuator = WindowAdaptationActuator(
            [join], fixed_cost=base, join_cost_full=0.012,
            min_scale=0.1, rng=random.Random(2),
        )
        loop = ControlLoop(engine, PolePlacementController(model), monitor,
                           actuator, target=2.0, period=1.0)
        rng = random.Random(3)
        arrivals = []
        rate = 60  # per side
        for k in range(80):
            for i in range(rate):
                arrivals.append((k + i / rate, (rng.randrange(100),), "left"))
                arrivals.append((k + i / rate + 1e-4,
                                 (rng.randrange(100),), "right"))
        rec = loop.run(arrivals, 80.0)
        q = rec.qos()
        est = [p.delay_estimate for p in rec.periods[30:75]]
        mean_est = sum(est) / len(est)
        # the loop is regulated (at or below target: window shrinking can
        # overshoot capacity downward, which is safe)
        assert mean_est < 3.0
        # and the data loss is small: windows absorbed the overload
        assert q.loss_ratio < 0.2
        assert join.window_scale < 1.0
