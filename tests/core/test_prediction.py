"""Unit tests for arrival-rate predictors."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    Ar1Predictor,
    HoltPredictor,
    LastValuePredictor,
    MovingAveragePredictor,
)
from repro.errors import ControlError

ALL = (LastValuePredictor, MovingAveragePredictor, HoltPredictor, Ar1Predictor)


class TestCommon:
    @pytest.mark.parametrize("cls", ALL)
    def test_initial_prediction_is_zero(self, cls):
        assert cls().predict() == 0.0

    @pytest.mark.parametrize("cls", ALL)
    def test_never_negative(self, cls):
        p = cls()
        for v in (100.0, 0.0, 300.0, 0.0, 0.0, 0.0):
            p.update(v)
            assert p.predict() >= 0.0

    @pytest.mark.parametrize("cls", ALL)
    def test_constant_signal_predicted_exactly(self, cls):
        p = cls()
        for __ in range(50):
            p.update(200.0)
        assert p.predict() == pytest.approx(200.0, rel=0.02)

    @pytest.mark.parametrize("cls", ALL)
    def test_reset(self, cls):
        p = cls()
        p.update(500.0)
        p.reset()
        assert p.predict() == 0.0

    @pytest.mark.parametrize("cls", ALL)
    def test_negative_observation_clamped(self, cls):
        p = cls()
        p.update(-10.0)
        assert p.predict() >= 0.0


class TestLastValue:
    def test_tracks_latest(self):
        p = LastValuePredictor()
        p.update(100.0)
        p.update(250.0)
        assert p.predict() == 250.0


class TestMovingAverage:
    def test_window_validation(self):
        with pytest.raises(ControlError):
            MovingAveragePredictor(window=0)

    def test_window_mean(self):
        p = MovingAveragePredictor(window=3)
        for v in (10.0, 20.0, 30.0, 40.0):
            p.update(v)
        assert p.predict() == pytest.approx(30.0)


class TestHolt:
    def test_parameter_validation(self):
        with pytest.raises(ControlError):
            HoltPredictor(level_alpha=0.0)
        with pytest.raises(ControlError):
            HoltPredictor(trend_beta=1.5)

    def test_unbiased_on_a_ramp(self):
        """The Fig. 8A scenario: last-value lags a ramp; Holt does not."""
        holt = HoltPredictor()
        last = LastValuePredictor()
        value = 0.0
        for k in range(100):
            value = 100.0 + 5.0 * k
            holt.update(value)
            last.update(value)
        next_true = 100.0 + 5.0 * 100
        assert abs(holt.predict() - next_true) < abs(last.predict() - next_true)
        assert holt.predict() == pytest.approx(next_true, rel=0.02)


class TestAr1:
    def test_parameter_validation(self):
        with pytest.raises(ControlError):
            Ar1Predictor(mean_alpha=0.0)
        with pytest.raises(ControlError):
            Ar1Predictor(forgetting=0.4)

    def test_learns_mean_reversion(self):
        """An alternating burst process has negative phi; the predictor
        should forecast a high period to be followed by a lower one."""
        p = Ar1Predictor(mean_alpha=0.05)
        rng = random.Random(0)
        for k in range(300):
            p.update(300.0 if k % 2 == 0 else 100.0)
        assert p.phi < 0.0
        p.update(300.0)
        assert p.predict() < 250.0

    def test_phi_clamped(self):
        p = Ar1Predictor()
        for k in range(50):
            p.update(float(k * 100))  # strongly trending
        assert -0.99 <= p.phi <= 0.99


@given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1,
                max_size=60))
def test_predictions_bounded_by_observation_range(values):
    """MA prediction never leaves the observed envelope."""
    p = MovingAveragePredictor(window=8)
    for v in values:
        p.update(v)
    assert min(values) - 1e-9 <= p.predict() <= max(values) + 1e-9
