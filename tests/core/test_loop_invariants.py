"""Property-based invariants of the full control loop.

Whatever the workload, controller, or actuator, some things must always
hold: tuples are conserved (offered = admitted + dropped; every admitted
tuple eventually departs), loss ratios stay in [0, 1], the virtual queue
never goes negative, and time series have consistent lengths.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AuroraOpenLoopController,
    BaselineController,
    ControlLoop,
    DsmsModel,
    EntryActuator,
    EwmaEstimator,
    Monitor,
    PolePlacementController,
    SamplingActuator,
)
from repro.dsms import Engine, identification_network
from repro.workloads import RateTrace, arrivals_from_trace

CONTROLLERS = [PolePlacementController, BaselineController,
               AuroraOpenLoopController]


def run_loop(rates, controller_cls, actuator=None, seed=0, target=2.0):
    engine = Engine(identification_network(), headroom=0.97,
                    rng=random.Random(seed))
    model = DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)
    monitor = Monitor(engine, model,
                      cost_estimator=EwmaEstimator(1 / 190, 0.3))
    loop = ControlLoop(engine, controller_cls(model), monitor,
                       actuator or EntryActuator(), target=target)
    trace = RateTrace([max(0.0, r) for r in rates], 1.0)
    arrivals = arrivals_from_trace(trace, seed=seed)
    return loop.run(arrivals, float(len(rates))), engine


@settings(max_examples=10, deadline=None)
@given(rates=st.lists(st.floats(min_value=0, max_value=500), min_size=5,
                      max_size=25),
       controller_idx=st.integers(min_value=0, max_value=2),
       seed=st.integers(min_value=0, max_value=100))
def test_tuple_conservation(rates, controller_idx, seed):
    record, engine = run_loop(rates, CONTROLLERS[controller_idx], seed=seed)
    # every offered tuple was either dropped at entry or admitted
    admitted = sum(p.admitted for p in record.periods)
    assert admitted + record.entry_dropped_total == record.offered_total
    # after the drain, every admitted tuple departed
    assert engine.departed_total == admitted
    assert engine.outstanding == 0
    # departures recorded match the engine's count
    assert len(record.departures) == admitted


@settings(max_examples=10, deadline=None)
@given(rates=st.lists(st.floats(min_value=0, max_value=500), min_size=5,
                      max_size=25),
       seed=st.integers(min_value=0, max_value=100))
def test_qos_metrics_well_formed(rates, seed):
    record, __ = run_loop(rates, PolePlacementController, seed=seed)
    q = record.qos()
    assert 0.0 <= q.loss_ratio <= 1.0
    assert 0.0 <= q.violation_ratio <= 1.0
    assert q.accumulated_violation >= 0.0
    assert q.max_overshoot >= 0.0
    assert q.delivered + q.shed <= q.offered
    assert q.delayed_tuples <= q.delivered


@settings(max_examples=8, deadline=None)
@given(rates=st.lists(st.floats(min_value=0, max_value=400), min_size=5,
                      max_size=20))
def test_series_lengths_consistent(rates):
    record, __ = run_loop(rates, PolePlacementController)
    n = len(rates)
    assert len(record.periods) == n
    assert len(record.estimated_delays()) == n
    assert len(record.queue_lengths()) == n
    assert len(record.targets()) == n
    # period indices are sequential
    assert [p.k for p in record.periods] == list(range(n))


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_queue_never_negative_and_alpha_in_range(seed):
    rng = random.Random(seed)
    rates = [rng.uniform(0, 500) for __ in range(20)]
    record, __ = run_loop(rates, PolePlacementController, seed=seed)
    for p in record.periods:
        assert p.queue_length >= 0
        assert 0.0 <= p.alpha <= 1.0
        assert p.offered >= p.admitted >= 0


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_sampling_actuator_same_invariants(seed):
    rng = random.Random(seed)
    rates = [rng.uniform(100, 500) for __ in range(15)]
    record, engine = run_loop(rates, PolePlacementController,
                              actuator=SamplingActuator(), seed=seed)
    admitted = sum(p.admitted for p in record.periods)
    assert admitted + record.entry_dropped_total == record.offered_total
    assert engine.outstanding == 0
