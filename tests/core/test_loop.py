"""Integration tests for the full control loop."""

import random

import pytest

from repro.core import (
    AdaptiveController,
    AuroraOpenLoopController,
    BaselineController,
    ControlLoop,
    DsmsModel,
    EntryActuator,
    EwmaEstimator,
    InNetworkActuator,
    Monitor,
    PolePlacementController,
)
from repro.dsms import Engine, VirtualQueueEngine, identification_network
from repro.errors import ExperimentError
from repro.shedding import QueueShedder
from repro.workloads import (
    arrivals_from_trace,
    constant_rate,
    pareto_rate_trace_with_mean,
    step_rate,
)


def make_loop(controller_cls=PolePlacementController, target=2.0,
              actuator=None, engine=None, period=1.0, seed=0, **ctrl_kw):
    engine = engine or Engine(identification_network(), headroom=0.97,
                              rng=random.Random(seed))
    model = DsmsModel(cost=1 / 190, headroom=0.97, period=period)
    monitor = Monitor(engine, model, cost_estimator=EwmaEstimator(1 / 190, 0.3))
    controller = controller_cls(model, **ctrl_kw)
    return ControlLoop(engine, controller, monitor, actuator,
                       target=target, period=period), engine


class TestLoopMechanics:
    def test_validation(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            make_loop(period=0.0)
        loop, __ = make_loop()
        with pytest.raises(ExperimentError):
            loop.run([], duration=0.0)

    def test_underload_admits_everything(self):
        loop, engine = make_loop()
        trace = constant_rate(100.0, 30)
        rec = loop.run(arrivals_from_trace(trace, seed=1), 30.0)
        q = rec.qos()
        assert q.loss_ratio == 0.0
        assert q.delayed_tuples == 0
        assert rec.offered_total == 3000

    def test_overload_is_regulated(self):
        """Sustained 2x overload: CTRL holds the delay near the target."""
        loop, engine = make_loop()
        trace = constant_rate(370.0, 60)
        rec = loop.run(arrivals_from_trace(trace, seed=2), 60.0)
        y = rec.true_delays()
        settled = y[20:55]
        assert sum(settled) / len(settled) == pytest.approx(2.0, abs=0.4)
        q = rec.qos()
        # structural loss ≈ 1 - capacity/offered = 1 - 184.3/370
        assert q.loss_ratio == pytest.approx(1 - 184.3 / 370, abs=0.05)

    def test_step_disturbance_recovers_in_designed_time(self):
        """Fig. 8B-style step: convergence within a handful of periods."""
        loop, __ = make_loop()
        trace = step_rate(60, 30, low=150.0, high=300.0)
        rec = loop.run(arrivals_from_trace(trace, seed=3), 60.0)
        y = rec.true_delays()
        # after the step at k=30, the designed loop settles in ~12 periods
        tail = y[45:58]
        assert all(v < 3.0 for v in tail)

    def test_target_schedule_followed(self):
        loop, __ = make_loop(target=lambda k: 1.0 if k < 30 else 3.0)
        trace = constant_rate(300.0, 60)
        rec = loop.run(arrivals_from_trace(trace, seed=4), 60.0)
        y = rec.true_delays()
        assert sum(y[20:28]) / 8 == pytest.approx(1.0, abs=0.4)
        assert sum(y[50:58]) / 8 == pytest.approx(3.0, abs=0.6)

    def test_records_have_expected_length(self):
        loop, __ = make_loop()
        trace = constant_rate(100.0, 10)
        rec = loop.run(arrivals_from_trace(trace, seed=5), 10.0)
        assert len(rec.periods) == 10
        assert rec.duration == 10.0
        assert rec.period == 1.0

    def test_drain_resolves_all_delays(self):
        loop, engine = make_loop()
        trace = constant_rate(300.0, 20)
        rec = loop.run(arrivals_from_trace(trace, seed=6), 20.0)
        assert engine.outstanding == 0
        delivered_or_shed = len(rec.departures) + rec.entry_dropped_total
        assert delivered_or_shed == rec.offered_total

    def test_default_drain_is_not_truncated(self):
        loop, __ = make_loop()
        trace = constant_rate(300.0, 20)
        rec = loop.run(arrivals_from_trace(trace, seed=6), 20.0)
        assert rec.drain_truncated is False
        assert rec.drain_leftover == 0

    def test_tiny_drain_budget_truncates_and_is_recorded(self):
        """A zero drain budget leaves the backlog to the flush, flagged."""
        loop, engine = make_loop()
        loop.drain_max_extra = 0.0
        # heavy overload with the actuator wide open for the first period
        # guarantees a backlog at the end of a short run
        trace = constant_rate(800.0, 3)
        rec = loop.run(arrivals_from_trace(trace, seed=6), 3.0)
        assert rec.drain_truncated is True
        assert rec.drain_leftover > 0
        # the flush still force-completes everything
        assert engine.outstanding == 0
        delivered_or_shed = len(rec.departures) + rec.entry_dropped_total
        assert delivered_or_shed == rec.offered_total

    def test_drain_budget_validation(self):
        import random as _random
        from repro.core import EwmaEstimator as _E
        engine = Engine(identification_network(), headroom=0.97,
                        rng=_random.Random(0))
        model = DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)
        monitor = Monitor(engine, model, cost_estimator=_E(1 / 190, 0.3))
        with pytest.raises(ExperimentError):
            ControlLoop(engine, PolePlacementController(model), monitor,
                        EntryActuator(), drain_max_extra=-1.0)


class TestSteppedApi:
    """begin()/run_period()/finish() — the service layer's entry points."""

    def _arrivals(self, rate=300.0, seconds=20):
        return arrivals_from_trace(constant_rate(rate, seconds), seed=21)

    def test_stepped_run_matches_classic_run_exactly(self):
        loop_a, __ = make_loop(seed=3)
        rec_a = loop_a.run(self._arrivals(), 20.0)

        loop_b, __ = make_loop(seed=3)
        rec_b = loop_b.begin()
        pending = list(self._arrivals())
        for k in range(20):
            boundary = (k + 1) * loop_b.period
            due = [a for a in pending if a[0] < boundary]
            pending = pending[len(due):]
            loop_b.run_period(rec_b, k, due)
        loop_b.finish(rec_b, 20)

        assert rec_a.periods == rec_b.periods
        assert rec_a.departures == rec_b.departures
        assert rec_a.offered_total == rec_b.offered_total
        assert rec_a.entry_dropped_total == rec_b.entry_dropped_total

    def test_set_target_takes_effect_next_decision(self):
        loop, __ = make_loop()
        rec = loop.begin()
        arrivals = list(self._arrivals(rate=300.0, seconds=40))
        for k in range(40):
            boundary = (k + 1) * loop.period
            due = [a for a in arrivals if k * loop.period <= a[0] < boundary]
            p = loop.run_period(rec, k, due)
            if k == 19:
                loop.set_target(4.0)
        loop.finish(rec, 40)
        assert rec.periods[10].target == 2.0
        assert rec.periods[25].target == 4.0
        # and the loop actually regulates toward the new budget
        est_tail = [p.delay_estimate for p in rec.periods[32:]]
        assert sum(est_tail) / len(est_tail) == pytest.approx(4.0, abs=0.8)


class TestActuatorVariants:
    def _run(self, actuator_factory):
        engine = Engine(identification_network(), headroom=0.97,
                        rng=random.Random(7))
        loop, __ = make_loop(engine=engine,
                             actuator=actuator_factory(engine))
        trace = constant_rate(370.0, 50)
        return loop.run(arrivals_from_trace(trace, seed=7), 50.0)

    def test_entry_and_queue_shedding_equivalent_for_loss_and_stability(self):
        """Section 4.5.2: where load is shed does not change the dynamics.

        Both actuators must stabilize the loop and pay the same data loss.
        In-network culling delivers *lower* actual delays than the estimate
        ŷ it controls (a culled tuple ahead of a survivor never consumes
        service), so the delay comparison is one-sided: conservative, never
        worse than entry shedding.
        """
        rec_entry = self._run(lambda e: EntryActuator())
        rec_queue = self._run(
            lambda e: InNetworkActuator(QueueShedder(e, random.Random(1)))
        )
        y_e = rec_entry.true_delays()[20:45]
        y_q = rec_queue.true_delays()[20:45]
        mean_e = sum(y_e) / len(y_e)
        mean_q = sum(y_q) / len(y_q)
        assert 0.4 * mean_e <= mean_q <= 1.2 * mean_e
        # the loss paid is the same
        assert rec_queue.qos().loss_ratio == pytest.approx(
            rec_entry.qos().loss_ratio, abs=0.03
        )
        # and the loop regulates: the estimated delay tracks the target
        est_q = [p.delay_estimate for p in rec_queue.periods[20:45]]
        assert sum(est_q) / len(est_q) == pytest.approx(2.0, abs=0.4)


class TestOtherControllers:
    def test_baseline_regulates(self):
        loop, __ = make_loop(BaselineController)
        trace = constant_rate(370.0, 50)
        rec = loop.run(arrivals_from_trace(trace, seed=8), 50.0)
        y = rec.true_delays()[20:45]
        assert sum(y) / len(y) == pytest.approx(2.0, abs=0.5)

    def test_aurora_does_not_regulate_to_target(self):
        loop, __ = make_loop(AuroraOpenLoopController)
        trace = constant_rate(370.0, 50)
        rec = loop.run(arrivals_from_trace(trace, seed=9), 50.0)
        y = rec.true_delays()[20:45]
        # open loop freezes the queue wherever it happens to be; with a
        # fast ramp-in the delay stays far from the 2 s target
        assert abs(sum(y) / len(y) - 2.0) > 0.5

    def test_adaptive_controller_regulates(self):
        loop, __ = make_loop(AdaptiveController)
        trace = constant_rate(370.0, 60)
        rec = loop.run(arrivals_from_trace(trace, seed=10), 60.0)
        y = rec.true_delays()[30:55]
        assert sum(y) / len(y) == pytest.approx(2.0, abs=0.5)

    def test_adaptive_identifies_gain(self):
        loop, __ = make_loop(AdaptiveController)
        trace = pareto_rate_trace_with_mean(60, beta=1.0, target_mean=250.0,
                                            seed=3)
        loop.run(arrivals_from_trace(trace, seed=11), 60.0)
        ctrl = loop.controller
        assert ctrl.estimator.updates > 5
        assert ctrl.identified_cost == pytest.approx(1 / 190, rel=0.5)


class TestFluidEngineLoop:
    def test_loop_runs_on_virtual_queue_engine(self):
        engine = VirtualQueueEngine(cost=1 / 190, headroom=0.97)
        model = DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)
        monitor = Monitor(engine, model)
        loop = ControlLoop(engine, PolePlacementController(model), monitor,
                           EntryActuator(), target=2.0)
        trace = constant_rate(370.0, 60)
        rec = loop.run(arrivals_from_trace(trace, seed=12), 60.0)
        y = rec.true_delays()[20:55]
        assert sum(y) / len(y) == pytest.approx(2.0, abs=0.4)

    def test_fluid_and_full_engine_agree(self):
        """The Eq. 2 abstraction: both engines under the same loop match."""
        trace = constant_rate(300.0, 60)

        fluid = VirtualQueueEngine(cost=1 / 190, headroom=0.97)
        model = DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)
        loop_f = ControlLoop(fluid, PolePlacementController(model),
                             Monitor(fluid, model), EntryActuator(), target=2.0)
        rec_f = loop_f.run(arrivals_from_trace(trace, seed=13), 60.0)

        loop_d, __ = make_loop(seed=13)
        rec_d = loop_d.run(arrivals_from_trace(trace, seed=13), 60.0)

        q_f, q_d = rec_f.qos(), rec_d.qos()
        assert q_f.loss_ratio == pytest.approx(q_d.loss_ratio, abs=0.05)
        assert q_f.mean_delay == pytest.approx(q_d.mean_delay, rel=0.2, abs=0.3)
