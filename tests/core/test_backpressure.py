"""Tests for the backpressure comparator and delay percentiles."""

import random

import pytest

from repro.core import (
    BackpressureController,
    ControlLoop,
    DsmsModel,
    EntryActuator,
    EwmaEstimator,
    Monitor,
    PolePlacementController,
)
from repro.core.monitor import Measurement
from repro.dsms import Departure, Engine, identification_network
from repro.errors import ControlError
from repro.metrics import delay_percentiles
from repro.workloads import arrivals_from_trace, constant_rate


def model():
    return DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)


def measurement(q, cost=1 / 190, fout=184.0):
    m = model()
    return Measurement(
        k=0, time=0.0, queue_length=q, cost=cost, measured_cost=cost,
        inflow_rate=300.0, outflow_rate=fout,
        delay_estimate=m.delay_estimate(q, cost),
        admitted=300, departed=int(fout), shed=0, departures=[],
    )


class TestBackpressureController:
    def test_validation(self):
        with pytest.raises(ControlError):
            BackpressureController(model(), max_queue=0)

    def test_regulates_toward_buffer_bound(self):
        ctrl = BackpressureController(model(), max_queue=400)
        below = ctrl.decide(measurement(q=100), 2.0)
        above = ctrl.decide(measurement(q=700), 2.0)
        assert below.u > 0 > above.u

    def test_ignores_delay_target(self):
        ctrl = BackpressureController(model(), max_queue=400)
        assert ctrl.decide(measurement(q=100), 1.0).v == \
            ctrl.decide(measurement(q=100), 5.0).v

    def test_delay_scales_with_cost_unlike_ctrl(self):
        """The headline difference: backpressure holds the queue, so when
        the per-tuple cost doubles its latency doubles; CTRL holds the
        delay by letting its queue target shrink."""
        def run(controller_cls, multiplier, **kw):
            eng = Engine(identification_network(), headroom=0.97,
                         cost_multiplier=lambda t: multiplier,
                         rng=random.Random(0))
            mdl = model()
            mon = Monitor(eng, mdl, cost_estimator=EwmaEstimator(1 / 190, 0.3))
            loop = ControlLoop(eng, controller_cls(mdl, **kw), mon,
                               EntryActuator(), target=2.0)
            trace = constant_rate(370.0 / multiplier, 60)
            rec = loop.run(arrivals_from_trace(trace, seed=1), 60.0)
            y = rec.true_delays()[30:55]
            return sum(y) / len(y)

        bp_1x = run(BackpressureController, 1.0, max_queue=368)
        bp_2x = run(BackpressureController, 2.0, max_queue=368)
        ctrl_1x = run(PolePlacementController, 1.0)
        ctrl_2x = run(PolePlacementController, 2.0)
        # backpressure latency roughly doubles with the cost
        assert bp_2x / bp_1x > 1.6
        # CTRL holds its target through the cost change
        assert abs(ctrl_2x - ctrl_1x) < 0.5
        assert ctrl_2x == pytest.approx(2.0, abs=0.5)


class TestDelayPercentiles:
    def deps(self, delays, shed=()):
        out = [Departure(0.0, d, False) for d in delays]
        out += [Departure(0.0, d, True) for d in shed]
        return out

    def test_basic_quantiles(self):
        deps = self.deps([float(i) for i in range(1, 101)])
        p = delay_percentiles(deps, quantiles=(0.5, 0.95, 0.99))
        assert p[0.5] == pytest.approx(51.0)
        assert p[0.95] == pytest.approx(96.0)
        assert p[0.99] == pytest.approx(100.0)

    def test_shed_excluded(self):
        deps = self.deps([1.0, 2.0], shed=[100.0])
        p = delay_percentiles(deps, quantiles=(0.99,))
        assert p[0.99] == pytest.approx(2.0)

    def test_empty(self):
        assert delay_percentiles([], quantiles=(0.5,)) == {0.5: 0.0}

    def test_quantile_validation(self):
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError):
            delay_percentiles([], quantiles=(1.5,))
