"""Integration tests for the extension actuators and the loop predictor."""

import random

import pytest

from repro.core import (
    ControlLoop,
    DsmsModel,
    EntryActuator,
    EwmaEstimator,
    HoltPredictor,
    Monitor,
    PolePlacementController,
    PriorityEntryActuator,
    SamplingActuator,
    SemanticEntryActuator,
)
from repro.dsms import Engine, QueryNetwork, MapOperator, identification_network
from repro.shedding import PriorityEntryShedder, SemanticEntryShedder
from repro.workloads import arrivals_from_trace, constant_rate, ramp_rate


def make_loop(actuator, engine=None, predictor=None, period=1.0, target=2.0):
    engine = engine or Engine(identification_network(), headroom=0.97,
                              rng=random.Random(0))
    model = DsmsModel(cost=1 / 190, headroom=0.97, period=period)
    monitor = Monitor(engine, model, cost_estimator=EwmaEstimator(1 / 190, 0.3))
    return ControlLoop(engine, PolePlacementController(model), monitor,
                       actuator, target=target, period=period,
                       predictor=predictor), engine


class TestSamplingActuator:
    def test_decimation_matches_allowance(self):
        act = SamplingActuator()
        act.begin_period(75.0, 300.0)  # keep 1 in 4
        admitted = sum(1 for _ in range(1200) if act.admit())
        assert admitted == pytest.approx(300, abs=2)
        assert act.alpha == pytest.approx(0.75)

    def test_zero_inflow_admits(self):
        act = SamplingActuator()
        act.begin_period(10.0, 0.0)
        assert act.admit()

    def test_regulates_the_loop(self):
        loop, __ = make_loop(SamplingActuator())
        rec = loop.run(arrivals_from_trace(constant_rate(370.0, 50), seed=1),
                       50.0)
        est = [p.delay_estimate for p in rec.periods[20:45]]
        assert sum(est) / len(est) == pytest.approx(2.0, abs=0.4)
        # deterministic decimation: lower loss variance than a fair coin,
        # same mean
        assert rec.qos().loss_ratio == pytest.approx(1 - 184.3 / 370, abs=0.05)


class TestSemanticActuator:
    def test_retains_more_utility_than_random(self):
        def run(actuator):
            loop, __ = make_loop(actuator)
            arrivals = arrivals_from_trace(constant_rate(370.0, 50), seed=2)
            return loop.run(arrivals, 50.0)

        semantic = SemanticEntryActuator(
            SemanticEntryShedder(utility=lambda v: v[0] if v else 0.0,
                                 rng=random.Random(3))
        )
        rec_sem = run(semantic)
        rec_rand = run(EntryActuator())
        # equal loss ...
        assert rec_sem.qos().loss_ratio == pytest.approx(
            rec_rand.qos().loss_ratio, abs=0.05)
        # ... but the semantic shedder kept the valuable tuples
        assert semantic.utility_retention > 0.62

    def test_loop_still_regulates(self):
        actuator = SemanticEntryActuator(
            SemanticEntryShedder(utility=lambda v: v[0] if v else 0.0,
                                 rng=random.Random(4))
        )
        loop, __ = make_loop(actuator)
        rec = loop.run(arrivals_from_trace(constant_rate(370.0, 50), seed=4),
                       50.0)
        est = [p.delay_estimate for p in rec.periods[20:45]]
        assert sum(est) / len(est) == pytest.approx(2.0, abs=0.4)


class TestPriorityActuator:
    def _two_source_network(self):
        net = QueryNetwork("two")
        net.add_source("gold")
        net.add_source("bronze")
        net.add_operator(MapOperator("g1", 1 / 380), ["gold"])
        net.add_operator(MapOperator("b1", 1 / 380), ["bronze"])
        return net

    def test_low_priority_absorbs_the_loss(self):
        net = self._two_source_network()
        engine = Engine(net, headroom=0.97, rng=random.Random(5))
        actuator = PriorityEntryActuator(
            PriorityEntryShedder({"gold": 2.0, "bronze": 1.0},
                                 rng=random.Random(6))
        )
        loop, __ = make_loop(actuator, engine=engine)
        rng = random.Random(7)
        arrivals = []
        for k in range(60):
            for i in range(300):  # 300/s per source: 600 vs capacity ~369
                arrivals.append((k + i / 300, (rng.random(),), "gold"))
                arrivals.append((k + i / 300 + 1e-4, (rng.random(),), "bronze"))
        rec = loop.run(arrivals, 60.0)
        loss = actuator.loss_by_source()
        assert loss["gold"] < 0.1
        assert loss["bronze"] > 0.4
        # and the aggregate delay is still regulated
        est = [p.delay_estimate for p in rec.periods[20:55]]
        assert sum(est) / len(est) == pytest.approx(2.0, abs=0.5)


class TestLoopPredictor:
    def test_holt_predictor_reduces_ramp_violations(self):
        """The Fig. 8A ramp: trend-aware inflow forecasting sheds earlier."""
        def run(predictor):
            loop, __ = make_loop(EntryActuator(), predictor=predictor)
            trace = ramp_rate(80, start=100.0, slope=8.0)  # 100 -> 732 t/s
            return loop.run(arrivals_from_trace(trace, seed=8), 80.0).qos()

        q_last = run(None)
        q_holt = run(HoltPredictor())
        assert q_holt.accumulated_violation <= q_last.accumulated_violation
