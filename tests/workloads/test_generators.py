"""Unit tests for workload generators (Pareto, web, patterns, costs)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads import (
    Circumstance,
    constant_cost_trace,
    cost_trace,
    fig14_cost_trace,
    pareto_median,
    pareto_rate_trace,
    pareto_rate_trace_with_mean,
    piecewise_rate,
    ramp_rate,
    sinusoid_rate,
    square_rate,
    step_rate,
    web_rate_trace,
)


class TestPareto:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            pareto_rate_trace(0)
        with pytest.raises(WorkloadError):
            pareto_rate_trace(10, beta=0.0)
        with pytest.raises(WorkloadError):
            pareto_rate_trace(10, scale=0.0)
        with pytest.raises(WorkloadError):
            pareto_rate_trace(10, scale=100.0, cap=50.0)

    def test_determinism_with_seed(self):
        a = pareto_rate_trace(100, seed=7)
        b = pareto_rate_trace(100, seed=7)
        assert list(a) == list(b)

    def test_range_respected(self):
        tr = pareto_rate_trace(2000, beta=1.0, scale=100.0, cap=800.0, seed=1)
        assert min(tr) >= 100.0
        assert max(tr) <= 800.0

    def test_median_matches_closed_form(self):
        tr = pareto_rate_trace(5000, beta=1.0, scale=100.0, cap=1e9, seed=2)
        values = sorted(tr)
        empirical = values[len(values) // 2]
        assert empirical == pytest.approx(pareto_median(1.0, 100.0), rel=0.1)

    def test_smaller_beta_is_burstier(self):
        """The paper's bias factor: smaller beta -> heavier tail (Fig. 17)."""
        bursty = pareto_rate_trace_with_mean(400, beta=0.5, target_mean=200,
                                             seed=3)
        smooth = pareto_rate_trace_with_mean(400, beta=1.5, target_mean=200,
                                             seed=3)
        assert bursty.burstiness() > smooth.burstiness()

    def test_mean_normalization(self):
        tr = pareto_rate_trace_with_mean(1000, beta=1.0, target_mean=250.0,
                                         seed=4)
        assert tr.mean() == pytest.approx(250.0, rel=0.1)

    def test_mean_validation(self):
        with pytest.raises(WorkloadError):
            pareto_rate_trace_with_mean(10, beta=1.0, target_mean=0.0)


class TestWeb:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            web_rate_trace(0)
        with pytest.raises(WorkloadError):
            web_rate_trace(10, n_sources=0)
        with pytest.raises(WorkloadError):
            web_rate_trace(10, on_shape=3.0)

    def test_mean_normalized(self):
        tr = web_rate_trace(400, mean_rate=250.0, seed=5)
        assert tr.mean() == pytest.approx(250.0, rel=1e-6)

    def test_determinism(self):
        assert list(web_rate_trace(50, seed=9)) == list(web_rate_trace(50, seed=9))

    def test_bursts_span_multiple_periods(self):
        """The paper: bursts last longer than 4-5 s -> strong lag-1 correlation."""
        tr = web_rate_trace(400, mean_rate=250.0, seed=6)
        values = list(tr)
        mu = tr.mean()
        num = sum((values[i] - mu) * (values[i + 1] - mu)
                  for i in range(len(values) - 1))
        den = sum((v - mu) ** 2 for v in values)
        lag1 = num / den
        assert lag1 > 0.4

    def test_less_bursty_than_pareto(self):
        """Fig. 13: fluctuations in 'Pareto' are more dramatic than 'Web'."""
        web = web_rate_trace(400, mean_rate=250.0, seed=11)
        par = pareto_rate_trace_with_mean(400, beta=1.0, target_mean=250.0,
                                          seed=11)
        assert web.burstiness() < par.burstiness()


class TestPatterns:
    def test_step(self):
        tr = step_rate(20, 10, low=150.0, high=300.0)
        assert tr.at(5.0) == 150.0
        assert tr.at(15.0) == 300.0

    def test_sinusoid_range(self):
        tr = sinusoid_rate(100, 40, low=0.0, high=400.0)
        assert min(tr) >= -1e-9
        assert max(tr) <= 400.0 + 1e-9

    def test_ramp_clamped_non_negative(self):
        tr = ramp_rate(10, start=-5.0, slope=1.0)
        assert min(tr) >= 0.0

    def test_piecewise(self):
        tr = piecewise_rate([(5, 100.0), (5, 200.0)])
        assert tr.at(2.0) == 100.0
        assert tr.at(7.0) == 200.0

    def test_square(self):
        tr = square_rate(20, 10, low=0.0, high=100.0)
        assert tr.mean() == pytest.approx(50.0)


class TestCosts:
    def test_constant(self):
        ct = constant_cost_trace(10, 0.005)
        assert all(v == 0.005 for v in ct)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            cost_trace(10, base_cost=0.0)
        with pytest.raises(WorkloadError):
            cost_trace(0, base_cost=0.005)

    def test_unknown_circumstance_kind(self):
        bad = Circumstance("wiggle", 0.0, 10.0, 0.005)
        with pytest.raises(WorkloadError):
            bad.profile(5.0)

    def test_circumstance_zero_outside_support(self):
        c = Circumstance("peak", start=10.0, duration=5.0, height=1.0)
        assert c.profile(9.9) == 0.0
        assert c.profile(15.1) == 0.0
        assert c.profile(12.5) > 0.0

    def test_jump_peak_is_instantaneous(self):
        c = Circumstance("jump_peak", start=10.0, duration=10.0, height=1.0)
        assert c.profile(10.0) == pytest.approx(1.0)
        assert c.profile(19.9) < 0.01

    def test_terrace_holds_then_drops(self):
        c = Circumstance("terrace", start=0.0, duration=10.0, height=1.0)
        assert c.profile(5.0) == pytest.approx(1.0)
        assert c.profile(9.9) == pytest.approx(1.0)
        assert c.profile(10.1) == 0.0

    def test_fig14_shape(self):
        """Small peak ~50s, jump ~125s, terrace 250-350s, base ~5.26 ms."""
        ct = fig14_cost_trace(400, base_cost=1 / 190, seed=0)
        base = 1 / 190
        assert ct.at(20.0) == pytest.approx(base, rel=0.35)
        assert ct.at(52.0) > 1.5 * base          # small peak
        assert ct.at(126.0) > 3.0 * base         # large jump peak
        assert ct.at(300.0) > 1.7 * base         # terrace
        assert ct.at(370.0) == pytest.approx(base, rel=0.35)  # after the drop

    def test_fig14_default_length(self):
        assert len(fig14_cost_trace()) == 400


@settings(max_examples=25)
@given(beta=st.floats(min_value=0.1, max_value=2.0),
       seed=st.integers(min_value=0, max_value=10_000))
def test_pareto_never_below_scale(beta, seed):
    tr = pareto_rate_trace(200, beta=beta, scale=50.0, cap=500.0, seed=seed)
    assert min(tr) >= 50.0
    assert max(tr) <= 500.0
