"""Unit tests for trace containers."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads import CostTrace, RateTrace
from repro.errors import WorkloadError


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            RateTrace([])

    def test_negative_values_rejected(self):
        with pytest.raises(WorkloadError):
            RateTrace([10.0, -1.0])

    def test_bad_period_rejected(self):
        with pytest.raises(WorkloadError):
            RateTrace([1.0], period=0.0)

    def test_duration(self):
        assert RateTrace([1, 2, 3], period=0.5).duration == pytest.approx(1.5)


class TestLookup:
    def test_at_maps_time_to_period(self):
        tr = RateTrace([10.0, 20.0, 30.0], period=2.0)
        assert tr.at(0.0) == 10.0
        assert tr.at(1.99) == 10.0
        assert tr.at(2.0) == 20.0
        assert tr.at(5.5) == 30.0

    def test_at_clamps_outside(self):
        tr = RateTrace([10.0, 20.0])
        assert tr.at(-5.0) == 10.0
        assert tr.at(100.0) == 20.0

    def test_as_function(self):
        tr = RateTrace([5.0])
        assert tr.as_function()(0.3) == 5.0

    def test_indexing_and_iteration(self):
        tr = RateTrace([1.0, 2.0])
        assert tr[1] == 2.0
        assert list(tr) == [1.0, 2.0]
        assert len(tr) == 2


class TestTransforms:
    def test_scaled(self):
        tr = RateTrace([10.0, 20.0]).scaled(0.5)
        assert list(tr) == [5.0, 10.0]
        with pytest.raises(WorkloadError):
            RateTrace([1.0]).scaled(-1.0)

    def test_clipped(self):
        tr = RateTrace([1.0, 5.0, 9.0]).clipped(2.0, 8.0)
        assert list(tr) == [2.0, 5.0, 8.0]
        with pytest.raises(WorkloadError):
            RateTrace([1.0]).clipped(3.0, 1.0)

    def test_resample_to_finer_grid(self):
        tr = RateTrace([10.0, 20.0], period=1.0)
        fine = tr.resampled(0.5)
        assert list(fine) == [10.0, 10.0, 20.0, 20.0]
        assert fine.period == 0.5

    def test_resample_to_coarser_grid(self):
        tr = RateTrace([10.0, 10.0, 30.0, 30.0], period=1.0)
        coarse = tr.resampled(2.0)
        assert len(coarse) == 2
        assert coarse.duration == pytest.approx(4.0)

    def test_resample_validation(self):
        with pytest.raises(WorkloadError):
            RateTrace([1.0]).resampled(0.0)


class TestStatistics:
    def test_mean_peak(self):
        tr = RateTrace([10.0, 30.0])
        assert tr.mean() == 20.0
        assert tr.peak() == 30.0

    def test_total_tuples(self):
        tr = RateTrace([100.0, 200.0], period=0.5)
        assert tr.total_tuples() == pytest.approx(150.0)

    def test_burstiness_zero_for_constant(self):
        assert RateTrace([5.0] * 10).burstiness() == 0.0

    def test_burstiness_increases_with_spread(self):
        low = RateTrace([90.0, 110.0] * 10)
        high = RateTrace([10.0, 190.0] * 10)
        assert high.burstiness() > low.burstiness()

    def test_burstiness_zero_rate(self):
        assert RateTrace([0.0, 0.0]).burstiness() == 0.0


class TestCostTrace:
    def test_as_multiplier(self):
        ct = CostTrace([0.005, 0.010], period=1.0)
        mult = ct.as_multiplier(base_cost=0.005)
        assert mult(0.5) == pytest.approx(1.0)
        assert mult(1.5) == pytest.approx(2.0)

    def test_multiplier_validation(self):
        with pytest.raises(WorkloadError):
            CostTrace([0.005]).as_multiplier(0.0)


@given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=50),
       st.floats(min_value=0.1, max_value=5.0))
def test_resampling_preserves_range(values, new_period):
    tr = RateTrace(values, period=1.0)
    res = tr.resampled(new_period)
    assert min(res) >= min(values) - 1e-9
    assert max(res) <= max(values) + 1e-9
