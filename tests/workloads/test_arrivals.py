"""Unit tests for arrival materialization."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    RateTrace,
    arrivals_from_trace,
    iter_arrivals,
    load_ita_trace,
    merge_arrivals,
    uniform_values,
)
from repro.workloads.arrivals import _poisson
from repro.errors import WorkloadError


class TestUniformValues:
    def test_field_count(self):
        v = uniform_values(random.Random(0), 6)
        assert len(v) == 6
        assert all(0.0 <= x < 1.0 for x in v)


class TestArrivalsFromTrace:
    def test_counts_match_trace(self):
        tr = RateTrace([100.0, 50.0], period=1.0)
        arr = arrivals_from_trace(tr, seed=0)
        assert len(arr) == 150
        first = [a for a in arr if a[0] < 1.0]
        assert len(first) == 100

    def test_time_ordered(self):
        tr = RateTrace([100.0, 300.0, 50.0])
        times = [a[0] for a in arrivals_from_trace(tr, seed=1)]
        assert times == sorted(times)

    def test_source_and_fields(self):
        tr = RateTrace([10.0])
        arr = arrivals_from_trace(tr, source="web", n_fields=3, seed=2)
        assert all(a[2] == "web" for a in arr)
        assert all(len(a[1]) == 3 for a in arr)

    def test_poisson_mode_mean(self):
        tr = RateTrace([200.0] * 50)
        arr = arrivals_from_trace(tr, poisson=True, seed=3)
        assert len(arr) == pytest.approx(200 * 50, rel=0.05)

    def test_iterator_matches_list(self):
        tr = RateTrace([30.0, 60.0])
        a = arrivals_from_trace(tr, seed=4)
        b = list(iter_arrivals(tr, seed=4))
        assert [x[0] for x in a] == [x[0] for x in b]

    def test_zero_rate_period(self):
        tr = RateTrace([0.0, 10.0])
        arr = arrivals_from_trace(tr, seed=5)
        assert len(arr) == 10
        assert all(a[0] >= 1.0 for a in arr)


class TestMerge:
    def test_merge_orders_by_time(self):
        a = [(0.0, (), "a"), (2.0, (), "a")]
        b = [(1.0, (), "b"), (3.0, (), "b")]
        merged = merge_arrivals(a, b)
        assert [m[0] for m in merged] == [0.0, 1.0, 2.0, 3.0]


class TestPoissonSampler:
    def test_zero_mean(self):
        assert _poisson(random.Random(0), 0.0) == 0

    def test_negative_mean_rejected(self):
        with pytest.raises(WorkloadError):
            _poisson(random.Random(0), -1.0)

    def test_small_mean_statistics(self):
        rng = random.Random(1)
        samples = [_poisson(rng, 3.0) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(3.0, rel=0.05)

    def test_large_mean_statistics(self):
        rng = random.Random(2)
        samples = [_poisson(rng, 200.0) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(200.0, rel=0.02)


class TestItaLoader:
    def test_roundtrip(self, tmp_path):
        p = tmp_path / "trace.txt"
        p.write_text("# comment\n100.0 x\n100.5 x\n101.2 x\n103.9 x\n")
        tr = load_ita_trace(p, period=1.0)
        assert list(tr) == [2.0, 1.0, 0.0, 1.0]

    def test_missing_file(self):
        with pytest.raises(WorkloadError):
            load_ita_trace("/nonexistent/file.txt")

    def test_bad_line(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("not-a-number\n")
        with pytest.raises(WorkloadError):
            load_ita_trace(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.txt"
        p.write_text("# only comments\n")
        with pytest.raises(WorkloadError):
            load_ita_trace(p)


@settings(max_examples=20, deadline=None)
@given(rates=st.lists(st.floats(min_value=0, max_value=500), min_size=1,
                      max_size=20),
       seed=st.integers(min_value=0, max_value=100))
def test_arrival_count_equals_rounded_rate_sum(rates, seed):
    tr = RateTrace(rates, period=1.0)
    arr = arrivals_from_trace(tr, seed=seed)
    assert len(arr) == sum(int(round(r)) for r in rates)
