"""On-disk arrival-trace cache: hits, key sensitivity, and fallbacks."""

import os
import pickle

import pytest

from repro.workloads import (
    RateTrace,
    arrivals_from_trace,
    cached_arrivals_from_trace,
    clear_trace_cache,
    trace_cache_dir,
    trace_cache_key,
)
from repro.workloads.cache import CACHE_MIN_TUPLES

# ~600 tuples/s x 10 periods comfortably clears CACHE_MIN_TUPLES
BIG = RateTrace([600.0] * 10, period=1.0)
SMALL = RateTrace([10.0] * 3, period=1.0)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    return tmp_path


def entries(cache_dir):
    return sorted(cache_dir.glob("*.pkl"))


def test_cache_round_trip_is_identical_to_generation(cache_dir):
    direct = arrivals_from_trace(BIG, poisson=True, seed=7)
    first = cached_arrivals_from_trace(BIG, poisson=True, seed=7)   # miss
    second = cached_arrivals_from_trace(BIG, poisson=True, seed=7)  # hit
    assert first == direct
    assert second == direct
    assert len(entries(cache_dir)) == 1


def test_cache_hit_does_not_regenerate(cache_dir, monkeypatch):
    cached_arrivals_from_trace(BIG, seed=1)
    calls = []

    def exploding(*args, **kwargs):  # a hit must never reach generation
        calls.append(1)
        raise AssertionError("regenerated on a cache hit")

    monkeypatch.setattr("repro.workloads.cache.arrivals_from_trace",
                        exploding)
    result = cached_arrivals_from_trace(BIG, seed=1)
    assert not calls
    assert result == arrivals_from_trace(BIG, seed=1)


def test_key_is_sensitive_to_every_input(cache_dir):
    base = trace_cache_key(BIG, "src", 4, False, 42)
    variants = [
        trace_cache_key(BIG, "other", 4, False, 42),
        trace_cache_key(BIG, "src", 2, False, 42),
        trace_cache_key(BIG, "src", 4, True, 42),
        trace_cache_key(BIG, "src", 4, False, 43),
        trace_cache_key(BIG, "src", 4, False, None),
        trace_cache_key(RateTrace([600.0] * 10, period=0.5), "src", 4,
                        False, 42),
        trace_cache_key(RateTrace([600.0] * 9 + [601.0], period=1.0),
                        "src", 4, False, 42),
    ]
    assert len({base, *variants}) == len(variants) + 1


def test_distinct_workloads_get_distinct_entries(cache_dir):
    cached_arrivals_from_trace(BIG, seed=1)
    cached_arrivals_from_trace(BIG, seed=2)
    assert len(entries(cache_dir)) == 2


def test_small_traces_skip_the_cache(cache_dir):
    assert SMALL.total_tuples() < CACHE_MIN_TUPLES
    result = cached_arrivals_from_trace(SMALL, seed=3)
    assert result == arrivals_from_trace(SMALL, seed=3)
    assert not entries(cache_dir)


def test_corrupt_entry_falls_back_and_repairs(cache_dir):
    good = cached_arrivals_from_trace(BIG, seed=5)
    path = entries(cache_dir)[0]
    path.write_bytes(b"not a pickle")
    assert cached_arrivals_from_trace(BIG, seed=5) == good
    with open(path, "rb") as fh:  # the bad entry was repaired in place
        assert pickle.load(fh) == good


def test_cache_disabled_by_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    assert trace_cache_dir() is None
    result = cached_arrivals_from_trace(BIG, seed=9)
    assert result == arrivals_from_trace(BIG, seed=9)


def test_clear_trace_cache_removes_entries(cache_dir):
    cached_arrivals_from_trace(BIG, seed=1)
    cached_arrivals_from_trace(BIG, seed=2)
    assert clear_trace_cache() == 2
    assert not entries(cache_dir)
    assert clear_trace_cache() == 0
