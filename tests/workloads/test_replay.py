"""Replay generator: schedule warping, CSV ingestion, socket sending.

The schedule math is pure and tested exactly; only the socket replays
are timed against the wall, with generous tolerances unless
``REPRO_RT_STRICT=1`` (check_trend.py's gating pattern: wall-clock
precision on a shared runner is topology, not correctness).
"""

import os
import socket
import threading

import pytest

from repro.errors import WorkloadError
from repro.workloads import arrivals_from_trace, constant_rate
from repro.workloads.replay import (
    TraceReplayer,
    load_citibike_csv,
    replay_over_socket,
    replay_schedule,
)

STRICT = os.environ.get("REPRO_RT_STRICT", "") == "1"
#: per-gap tolerance for wall-clock timing assertions, seconds
SLACK = 0.02 if STRICT else 0.25


def _arr(times):
    return [(t, (i,), "src") for i, t in enumerate(times)]


# ---------------------------------------------------------------------- #
# replay_schedule: pure, exact
# ---------------------------------------------------------------------- #
def test_schedule_1x_preserves_gaps():
    times = [0.0, 0.5, 1.7, 4.0]
    assert replay_schedule(_arr(times)) == pytest.approx(times)


def test_schedule_speedup_scales_gaps():
    times = [0.0, 1.0, 3.0, 10.0]
    sched = replay_schedule(_arr(times), speed=50.0)
    assert sched == pytest.approx([t / 50.0 for t in times])
    gaps = [b - a for a, b in zip(sched, sched[1:])]
    orig = [b - a for a, b in zip(times, times[1:])]
    assert gaps == pytest.approx([g / 50.0 for g in orig])


def test_schedule_burst_compresses_first_half_window():
    # window 10s, factor 4: first half lands in [0, 1.25), second half
    # stretches to close the window exactly at 10
    sched = replay_schedule(_arr([0.0, 2.5, 5.0, 7.5, 10.0]),
                            burst_factor=4.0, burst_period=10.0)
    assert sched == pytest.approx([0.0, 0.625, 1.25, 5.625, 10.0])


def test_schedule_burst_preserves_window_duration():
    # mean rate is invariant: a timestamp at any window edge maps to itself
    for edge in (0.0, 10.0, 20.0, 30.0):
        sched = replay_schedule(_arr([edge]), burst_factor=7.0,
                                burst_period=10.0)
        assert sched[0] == pytest.approx(edge)


def test_schedule_burst_composes_with_speedup():
    # speedup first (trace seconds -> replay seconds), then shaping
    sched = replay_schedule(_arr([0.0, 50.0, 100.0]), speed=10.0,
                            burst_factor=2.0, burst_period=10.0)
    assert sched == pytest.approx([0.0, 2.5, 10.0])


def test_schedule_burst_is_monotonic():
    times = [i * 0.37 for i in range(200)]
    sched = replay_schedule(_arr(times), speed=3.0, burst_factor=5.0,
                            burst_period=2.0)
    assert all(b >= a for a, b in zip(sched, sched[1:]))


@pytest.mark.parametrize("kwargs", [
    {"speed": 0.0}, {"speed": -1.0},
    {"burst_factor": 0.5}, {"burst_period": 0.0},
])
def test_schedule_rejects_bad_parameters(kwargs):
    with pytest.raises(WorkloadError):
        replay_schedule(_arr([0.0, 1.0]), **kwargs)


def test_schedule_rejects_unordered_arrivals():
    with pytest.raises(WorkloadError):
        replay_schedule(_arr([1.0, 0.5]))


# ---------------------------------------------------------------------- #
# Citi-Bike CSV ingestion (2018 schema)
# ---------------------------------------------------------------------- #
CSV_2018 = '''"tripduration","starttime","stoptime","start station id","start station name","start station latitude","start station longitude","end station id","end station name","end station latitude","end station longitude","bikeid","usertype","birth year","gender"
"680","2018-04-01 00:00:05.2680","2018-04-01 00:11:25.3860","3255","8 Ave & W 31 St","40.75","-73.99","505","6 Ave & W 33 St","40.74","-73.98","31956","Subscriber","1992","1"
"394","2018-04-01 00:00:11.2790","2018-04-01 00:06:45.5340","519","Pershing Square North","40.75","-73.97","526","E 33 St & 5 Ave","40.74","-73.98","32830","Subscriber","1969","1"
"1325","2018-04-01 00:00:20.6490","2018-04-01 00:22:25.8950","3232","Bond St & Fulton St","40.68","-73.98","3注","Dock 72 Way","40.69","-73.97","28905","Subscriber","1993","1"
'''


def test_citibike_csv_parses_2018_schema(tmp_path):
    path = tmp_path / "trips.csv"
    path.write_text(CSV_2018)
    arrivals = load_citibike_csv(path)
    assert len(arrivals) == 3
    t0, values0, source0 = arrivals[0]
    assert t0 == 0.0  # timestamps relative to the first trip
    assert source0 == "bike"
    assert values0[0] == 680  # tripduration
    assert values0[1] == 3255  # start station id
    assert values0[3] == 31956  # bikeid
    # inter-arrival gaps follow starttime differences
    assert arrivals[1][0] == pytest.approx(6.011, abs=1e-3)
    assert arrivals[2][0] == pytest.approx(15.381, abs=1e-3)
    # the third row's unparseable end-station id degrades to 0, not a crash
    assert arrivals[2][1][2] == 0


def test_citibike_csv_limit_and_source(tmp_path):
    path = tmp_path / "trips.csv"
    path.write_text(CSV_2018)
    arrivals = load_citibike_csv(path, source="citi", limit=2)
    assert len(arrivals) == 2
    assert all(s == "citi" for _, _, s in arrivals)


def test_citibike_csv_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(WorkloadError):
        load_citibike_csv(path)


def test_citibike_csv_rejects_empty(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text('"tripduration","starttime"\n')
    with pytest.raises(WorkloadError):
        load_citibike_csv(path)


# ---------------------------------------------------------------------- #
# socket replay (loopback)
# ---------------------------------------------------------------------- #
class _Sink:
    """Accepts one connection and records receive times per line."""

    def __init__(self):
        self.server = socket.create_server(("127.0.0.1", 0))
        self.port = self.server.getsockname()[1]
        self.lines = []
        self.times = []
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        import time
        conn, _ = self.server.accept()
        start = time.monotonic()
        buf = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                self.lines.append(line)
                self.times.append(time.monotonic() - start)
        conn.close()

    def close(self):
        self._thread.join(timeout=10)
        self.server.close()


def test_replay_sends_every_tuple_in_order():
    sink = _Sink()
    arrivals = _arr([i * 0.001 for i in range(100)])
    sent = replay_over_socket(arrivals, "127.0.0.1", sink.port, speed=1000.0)
    sink.close()
    assert sent == 100
    assert len(sink.lines) == 100
    from repro.serve.protocol import decode_line
    decoded = [decode_line(line) for line in sink.lines]
    assert [v[0][0] for v in decoded] == list(range(100))


def test_replay_1x_reproduces_gaps_within_tolerance():
    sink = _Sink()
    times = [0.0, 0.2, 0.4, 0.6]
    replay_over_socket(_arr(times), "127.0.0.1", sink.port, speed=1.0,
                       batch_window=0.0)
    sink.close()
    assert len(sink.times) == 4
    for expected, (a, b) in zip([0.2, 0.2, 0.2],
                                zip(sink.times, sink.times[1:])):
        assert abs((b - a) - expected) < SLACK


def test_replay_speedup_compresses_wall_time():
    import time
    sink = _Sink()
    times = [i * 0.1 for i in range(50)]  # 5 s of trace
    t0 = time.monotonic()
    replay_over_socket(_arr(times), "127.0.0.1", sink.port, speed=50.0)
    wall = time.monotonic() - t0
    sink.close()
    assert wall < 5.0 / 50.0 + 10 * SLACK  # ~0.1 s at 50x
    assert len(sink.lines) == 50


def test_replay_refused_connection_returns_zero():
    # grab a port that is definitely closed
    probe = socket.create_server(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    assert replay_over_socket(_arr([0.0]), "127.0.0.1", port) == 0


def test_replayer_thread_stop_mid_replay():
    sink = _Sink()
    arrivals = _arr([i * 0.5 for i in range(1000)])  # would take ~500 s
    rep = TraceReplayer(arrivals, "127.0.0.1", sink.port).start()
    assert rep.running
    sent = rep.stop()
    assert not rep.running
    assert sent < 1000
    sink.server.close()
