"""Unit tests for stability margins of the paper's design."""

import math

import pytest

from repro.control import TransferFunction
from repro.control.margins import bode_points, stability_margins
from .test_transfer_function import paper_controller, paper_plant


class TestPaperDesignMargins:
    @pytest.fixture(scope="class")
    def margins(self):
        return stability_margins(paper_controller() * paper_plant())

    def test_gain_margin_covers_cost_estimation_error(self, margins):
        """The loop gain scales as 1/c-estimate: the gain margin is exactly
        how badly the cost statistics may undershoot before instability.
        The paper's design must tolerate at least a 2x error."""
        assert margins.gain_margin > 2.0

    def test_phase_margin_healthy(self, margins):
        """> 30 degrees is the classical rule of thumb; the 0.7/0.7 design
        should sit comfortably above it."""
        assert margins.phase_margin_deg > 30.0

    def test_modulus_margin_positive(self, margins):
        assert margins.modulus_margin > 0.3

    def test_crossovers_found(self, margins):
        assert margins.gain_crossover is not None
        assert 0.0 < margins.gain_crossover < math.pi


class TestMarginBehaviour:
    def test_faster_poles_erode_margins(self):
        """Placing poles closer to 0 demands more gain -> smaller margins
        (the paper's 'large control authority' warning, quantified)."""
        from repro.core import DsmsModel, design_gains
        model = DsmsModel(cost=1 / 190, headroom=0.97, period=1.0)
        slow = design_gains(poles=(0.8, 0.8), controller_pole=0.8)
        fast = design_gains(poles=(0.2, 0.2), controller_pole=0.8)
        m_slow = stability_margins(
            slow.transfer_function(model) * model.plant())
        m_fast = stability_margins(
            fast.transfer_function(model) * model.plant())
        assert m_fast.modulus_margin < m_slow.modulus_margin

    def test_pure_gain_loop_has_infinite_gain_margin(self):
        # L = 0.5/(z - 0.5): never reaches -180° with magnitude crossing
        loop = TransferFunction([0.5], [1.0, -0.5])
        m = stability_margins(loop)
        assert m.gain_margin == math.inf or m.gain_margin > 2.0

    def test_marginal_loop_detected(self):
        """A loop on the edge of instability has tiny margins."""
        # integrator with very high gain: nearly unstable closed loop
        loop = TransferFunction([1.9], [1.0, -1.0])
        m = stability_margins(loop)
        assert m.gain_margin < 1.2
        assert m.modulus_margin < 0.2


class TestBode:
    def test_points_shape(self):
        pts = bode_points(paper_controller() * paper_plant(), n_points=64)
        assert len(pts) == 64
        for w, mag_db, phase in pts:
            assert 0 < w <= math.pi
            assert -360.0 <= phase <= 360.0

    def test_integrator_rolls_off(self):
        pts = bode_points(TransferFunction.integrator(1.0), n_points=32)
        mags = [m for __, m, __ in pts]
        assert mags[0] > mags[-1]
