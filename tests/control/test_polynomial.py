"""Unit tests for z-domain polynomial algebra."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.control import Polynomial, as_polynomial
from repro.errors import ControlError


class TestConstruction:
    def test_coeffs_are_trimmed(self):
        p = Polynomial([0.0, 0.0, 1.0, 2.0])
        assert p.coeffs == (1.0, 2.0)
        assert p.degree == 1

    def test_zero_polynomial(self):
        assert Polynomial.zero().is_zero
        assert Polynomial([0, 0, 0]).is_zero

    def test_from_roots_real(self):
        p = Polynomial.from_roots([0.7, 0.7])
        # the paper's Eq. 14: z^2 - 1.4 z + 0.49
        assert p.almost_equal(Polynomial([1.0, -1.4, 0.49]))

    def test_from_roots_conjugate_pair(self):
        p = Polynomial.from_roots([0.5 + 0.5j, 0.5 - 0.5j])
        assert p.almost_equal(Polynomial([1.0, -1.0, 0.5]))

    def test_from_roots_unbalanced_complex_rejected(self):
        with pytest.raises(ControlError):
            Polynomial.from_roots([0.5 + 0.5j])

    def test_from_no_roots_is_one(self):
        assert Polynomial.from_roots([]) == Polynomial.one()

    def test_as_polynomial_scalar(self):
        assert as_polynomial(3) == Polynomial([3.0])

    def test_as_polynomial_rejects_nan(self):
        with pytest.raises(ControlError):
            as_polynomial(float("nan"))


class TestAlgebra:
    def test_addition_aligns_degrees(self):
        a = Polynomial([1.0, 2.0])       # z + 2
        b = Polynomial([1.0, 0.0, 0.0])  # z^2
        assert (a + b) == Polynomial([1.0, 1.0, 2.0])

    def test_scalar_addition(self):
        assert (Polynomial([1.0, 0.0]) + 1) == Polynomial([1.0, 1.0])

    def test_subtraction(self):
        a = Polynomial([1.0, -1.4, 0.49])
        b = Polynomial([1.0, 0.0, 0.0])
        assert (a - b) == Polynomial([-1.4, 0.49])

    def test_multiplication(self):
        # (z - 0.7)^2 = z^2 - 1.4 z + 0.49
        f = Polynomial([1.0, -0.7])
        assert (f * f).almost_equal(Polynomial([1.0, -1.4, 0.49]))

    def test_scalar_multiplication(self):
        assert (2 * Polynomial([1.0, 1.0])) == Polynomial([2.0, 2.0])

    def test_divmod_exact(self):
        num = Polynomial([1.0, -1.4, 0.49])
        den = Polynomial([1.0, -0.7])
        q, r = num.divmod(den)
        assert q.almost_equal(den)
        assert r.almost_equal(Polynomial.zero(), tol=1e-9)

    def test_divmod_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Polynomial([1.0]).divmod(Polynomial.zero())

    def test_shift(self):
        assert Polynomial([1.0]).shift(2) == Polynomial([1.0, 0.0, 0.0])
        with pytest.raises(ControlError):
            Polynomial([1.0]).shift(-1)

    def test_monic(self):
        assert Polynomial([2.0, 4.0]).monic() == Polynomial([1.0, 2.0])
        with pytest.raises(ControlError):
            Polynomial.zero().monic()


class TestEvaluation:
    def test_horner_evaluation(self):
        p = Polynomial([1.0, -1.4, 0.49])
        assert p(0.7) == pytest.approx(0.0)
        assert p(1.0) == pytest.approx(0.09)

    def test_roots_roundtrip(self):
        roots = sorted(Polynomial([1.0, -1.4, 0.49]).roots().real.tolist())
        assert roots == pytest.approx([0.7, 0.7], abs=1e-6)

    def test_degree_zero_has_no_roots(self):
        assert Polynomial([5.0]).roots().size == 0

    def test_str_rendering(self):
        assert str(Polynomial([1.0, -1.4, 0.49])) == "1 z^2 - 1.4 z + 0.49"


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=6),
       st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=6))
def test_multiplication_commutes(a, b):
    pa, pb = Polynomial(a), Polynomial(b)
    assert (pa * pb).almost_equal(pb * pa)


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=6),
       st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=6),
       st.floats(min_value=-2, max_value=2))
def test_addition_is_pointwise(a, b, z):
    pa, pb = Polynomial(a), Polynomial(b)
    lhs = (pa + pb)(z)
    rhs = pa(z) + pb(z)
    assert math.isclose(lhs, rhs, rel_tol=1e-9, abs_tol=1e-6)


@given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=5))
def test_divmod_reconstructs(coeffs):
    p = Polynomial(coeffs)
    d = Polynomial([1.0, -0.5])
    q, r = p.divmod(d)
    assert (q * d + r).almost_equal(p, tol=1e-7)
