"""Unit tests for stability/damping/step-metric analysis."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.control import (
    TransferFunction,
    closed_loop_poles,
    complementary_sensitivity,
    convergence_periods,
    disturbance_rejection_gain,
    dominant_pole,
    is_stable,
    pole_damping,
    pole_time_constant,
    sensitivity,
    spectral_radius,
    step_metrics,
    step_response,
)
from repro.errors import ControlError
from .test_transfer_function import paper_controller, paper_plant


class TestStability:
    def test_stable_tf(self):
        assert is_stable(TransferFunction([1.0], [1.0, -0.5]))

    def test_integrator_is_marginally_unstable(self):
        assert not is_stable(TransferFunction.integrator(1.0))

    def test_unstable_pole(self):
        assert not is_stable(TransferFunction([1.0], [1.0, -1.5]))

    def test_gain_has_no_poles(self):
        assert is_stable(TransferFunction.gain(10.0))
        assert spectral_radius(TransferFunction.gain(10.0)) == 0.0

    def test_spectral_radius(self):
        tf = TransferFunction([1.0], [1.0, -1.2, 0.35])  # poles 0.7, 0.5
        assert spectral_radius(tf) == pytest.approx(0.7)

    def test_paper_closed_loop_is_stable(self):
        closed = (paper_controller() * paper_plant()).feedback()
        assert is_stable(closed)
        assert spectral_radius(closed) == pytest.approx(0.7, abs=1e-3)


class TestPoleCharacteristics:
    def test_real_positive_pole_critically_damped(self):
        assert pole_damping(0.7 + 0j) == pytest.approx(1.0)

    def test_unit_circle_pole_undamped(self):
        assert pole_damping(complex(math.cos(0.5), math.sin(0.5))) == pytest.approx(0.0, abs=1e-12)

    def test_unstable_pole_negative_damping(self):
        assert pole_damping(1.2 + 0.3j) < 0.0

    def test_origin_pole_deadbeat(self):
        assert pole_damping(0j) == pytest.approx(1.0)

    def test_time_constant(self):
        # paper: pole at 0.7 ~ three-period convergence (e^{-1/3} ≈ 0.717)
        assert convergence_periods(0.7) == pytest.approx(2.8, abs=0.1)
        assert pole_time_constant(0.7, period=2.0) == pytest.approx(5.6, abs=0.2)
        assert pole_time_constant(1.0) == float("inf")
        assert pole_time_constant(0.0) == 0.0

    def test_dominant_pole(self):
        tf = TransferFunction([1.0], [1.0, -1.2, 0.35])
        assert dominant_pole(tf).real == pytest.approx(0.7)
        with pytest.raises(ControlError):
            dominant_pole(TransferFunction.gain(1.0))


class TestStepMetrics:
    def test_paper_design_nearly_monotone(self):
        # The closed-loop zero at -b1/b0 = 0.775 induces a tiny (<2%)
        # overshoot even though both poles are critically damped.
        closed = (paper_controller() * paper_plant()).feedback()
        m = step_metrics(step_response(closed, 40))
        assert m.overshoot_pct < 2.0
        assert m.steady_state_error < 1e-3
        # at least ~63% of target after 3 periods, ~98% after 12 (Appendix A;
        # the controller zero makes tracking slightly faster than pole decay)
        y = step_response(closed, 15)
        assert y[3] >= 0.63
        assert y[12] >= 0.98

    def test_overshoot_detected(self):
        # underdamped poles 0.5 ± 0.5j -> visible overshoot, dc gain 1
        tf = TransferFunction([0.5], [1.0, -1.0, 0.5])
        y = step_response(tf, 80)
        m = step_metrics(y)
        assert m.overshoot > 0.0
        assert m.oscillatory

    def test_empty_response_rejected(self):
        with pytest.raises(ControlError):
            step_metrics([])

    def test_settling_index(self):
        m = step_metrics([0.0, 0.5, 0.9, 1.0, 1.0, 1.0], reference=1.0)
        assert m.settling_index == 3


class TestLoopShaping:
    def test_sensitivity_complements_tracking(self):
        """S + T = 1 at every frequency."""
        s = sensitivity(paper_plant(), paper_controller())
        t = complementary_sensitivity(paper_plant(), paper_controller())
        for omega in (0.1, 0.5, 1.0, 2.0, 3.0):
            total = s.frequency_response(omega) + t.frequency_response(omega)
            assert total.real == pytest.approx(1.0, abs=1e-6)
            assert total.imag == pytest.approx(0.0, abs=1e-6)

    def test_integrator_rejects_dc_disturbances(self):
        """The plant integrator drives S(1) to zero: constant disturbances vanish."""
        assert disturbance_rejection_gain(paper_plant(), paper_controller(), 0.0) \
            == pytest.approx(0.0, abs=1e-9)

    def test_closed_loop_poles_match_feedback(self):
        poles = closed_loop_poles(paper_plant(), paper_controller())
        assert sorted(p.real for p in poles) == pytest.approx([0.7, 0.7], abs=1e-3)


@given(st.floats(min_value=0.01, max_value=0.99))
def test_real_pole_damping_always_one(r):
    assert pole_damping(complex(r, 0.0)) == pytest.approx(1.0)


@given(st.floats(min_value=0.1, max_value=0.99),
       st.floats(min_value=0.05, max_value=1.5))
def test_damping_invariant_under_radial_angle_scaling(r, theta):
    """Damping depends only on the ratio ln(r)/theta, not on T.

    theta is kept below pi/2 so the doubled angle does not wrap past pi
    (aliasing, where the s-plane equivalence genuinely breaks).
    """
    z1 = complex(r * math.cos(theta), r * math.sin(theta))
    # squaring z corresponds to doubling the sampling period
    z2 = z1 * z1
    assert pole_damping(z1) == pytest.approx(pole_damping(z2), abs=1e-9)
