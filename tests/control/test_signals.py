"""Unit tests for test-signal builders."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.control import signals
from repro.control.signals import (
    constant,
    piecewise,
    ramp,
    sinusoid,
    square_wave,
    step,
)
from repro.errors import ControlError


class TestStep:
    def test_shape(self):
        s = step(10, 4, low=1.0, high=5.0)
        assert s[:4] == [1.0] * 4
        assert s[4:] == [5.0] * 6

    def test_step_at_bounds(self):
        assert step(3, 0, high=2.0) == [2.0, 2.0, 2.0]
        assert step(3, 3, low=1.0) == [1.0, 1.0, 1.0]

    def test_invalid_step_position(self):
        with pytest.raises(ControlError):
            step(5, 6)


class TestSinusoid:
    def test_range_respected(self):
        s = sinusoid(1000, period_samples=50, low=0.0, high=400.0)
        assert min(s) >= -1e-9
        assert max(s) <= 400.0 + 1e-9

    def test_starts_at_minimum_by_default(self):
        s = sinusoid(10, period_samples=40, low=0.0, high=400.0)
        assert s[0] == pytest.approx(0.0, abs=1e-9)

    def test_periodicity(self):
        s = sinusoid(80, period_samples=20, low=-1.0, high=1.0)
        for k in range(60):
            assert s[k] == pytest.approx(s[k + 20], abs=1e-9)

    def test_invalid_parameters(self):
        with pytest.raises(ControlError):
            sinusoid(10, period_samples=0, low=0, high=1)
        with pytest.raises(ControlError):
            sinusoid(10, period_samples=5, low=1, high=0)


class TestOthers:
    def test_constant(self):
        assert constant(2.5, 3) == [2.5, 2.5, 2.5]

    def test_ramp_slope(self):
        r = ramp(5, start=10.0, slope=2.0)
        assert r == [10.0, 12.0, 14.0, 16.0, 18.0]

    def test_square_wave_duty_cycle(self):
        s = square_wave(100, period_samples=10, low=0.0, high=1.0)
        assert sum(s) == pytest.approx(50.0)

    def test_square_wave_period_validation(self):
        with pytest.raises(ControlError):
            square_wave(10, period_samples=1, low=0, high=1)

    def test_piecewise_fig18_schedule(self):
        yd = piecewise([(150, 1.0), (150, 3.0), (100, 5.0)])
        assert len(yd) == 400
        assert yd[0] == 1.0 and yd[149] == 1.0
        assert yd[150] == 3.0 and yd[299] == 3.0
        assert yd[300] == 5.0 and yd[-1] == 5.0

    def test_piecewise_empty_rejected(self):
        with pytest.raises(ControlError):
            piecewise([])

    def test_negative_length_rejected(self):
        with pytest.raises(ControlError):
            constant(1.0, -1)


@given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=200))
def test_step_length_invariant(n, at):
    if at > n:
        return
    assert len(step(n, at)) == n


@given(st.integers(min_value=2, max_value=500),
       st.floats(min_value=-100, max_value=100),
       st.floats(min_value=0, max_value=100))
def test_sinusoid_mean_near_midpoint(n, low, spread):
    high = low + spread
    period = n  # one full period
    s = sinusoid(n, period_samples=period, low=low, high=high)
    mid = (low + high) / 2
    assert sum(s) / n == pytest.approx(mid, abs=max(1.0, spread) * 0.05 + 1e-6)
