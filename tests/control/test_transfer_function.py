"""Unit tests for transfer-function block algebra."""

import numpy as np
import pytest

from repro.control import Polynomial, TransferFunction, as_transfer_function
from repro.errors import ControlError


def paper_plant(c=0.00526, T=1.0, H=0.97):
    """The paper's Eq. 4 plant: G(z) = cT / (H (z - 1))."""
    return TransferFunction.integrator(c * T / H)


def paper_controller(c=0.00526, T=1.0, H=0.97, b0=0.4, b1=-0.31, a=-0.8):
    """The paper's Eq. 15 controller with its published parameters."""
    k = H / (c * T)
    return TransferFunction(Polynomial([k * b0, k * b1]), Polynomial([1.0, a]))


class TestConstruction:
    def test_zero_denominator_rejected(self):
        with pytest.raises(ControlError):
            TransferFunction([1.0], [0.0])

    def test_gain_block(self):
        g = TransferFunction.gain(2.5)
        assert g.dc_gain() == pytest.approx(2.5)
        assert g.poles().size == 0

    def test_delay_block(self):
        d = TransferFunction.delay(2)
        assert d.evaluate(2.0) == pytest.approx(0.25)
        with pytest.raises(ControlError):
            TransferFunction.delay(-1)

    def test_integrator_pole_at_one(self):
        g = TransferFunction.integrator(0.5)
        assert g.poles().real.tolist() == pytest.approx([1.0])
        assert g.dc_gain() == float("inf")

    def test_coerce_from_lists(self):
        tf = TransferFunction([1.0, 0.0], [1.0, -0.5])
        assert tf.num == Polynomial([1.0, 0.0])


class TestAlgebra:
    def test_series_connection(self):
        g1 = TransferFunction.gain(2.0)
        g2 = TransferFunction.integrator(3.0)
        series = g1 * g2
        assert series.evaluate(2.0) == pytest.approx(6.0)

    def test_parallel_connection(self):
        s = TransferFunction.gain(1.0) + TransferFunction.gain(2.0)
        assert s.dc_gain() == pytest.approx(3.0)

    def test_subtraction_and_negation(self):
        g = TransferFunction.gain(2.0)
        assert (g - g).evaluate(2.0) == pytest.approx(0.0)
        assert (-g).dc_gain() == pytest.approx(-2.0)

    def test_division(self):
        g = TransferFunction.integrator(2.0)
        one = g / g
        assert one.evaluate(3.0) == pytest.approx(1.0)
        with pytest.raises(ZeroDivisionError):
            g / TransferFunction.gain(0.0)

    def test_unity_feedback_closed_loop_poles(self):
        # C*G with the paper's numbers must have both poles at 0.7 (Eq. 16/17)
        closed = (paper_controller() * paper_plant()).feedback()
        poles = sorted(closed.poles().real.tolist())
        assert poles == pytest.approx([0.7, 0.7], abs=1e-3)

    def test_feedback_static_gain_is_unity(self):
        # Eq. 19: zero steady-state error
        closed = (paper_controller() * paper_plant()).feedback()
        assert closed.dc_gain() == pytest.approx(1.0, abs=1e-6)

    def test_nonunity_feedback(self):
        g = TransferFunction.gain(4.0)
        h = TransferFunction.gain(0.5)
        closed = g.feedback(h)
        assert closed.dc_gain() == pytest.approx(4.0 / 3.0)


class TestQueries:
    def test_frequency_response_at_dc(self):
        g = TransferFunction([1.0], [1.0, -0.5])
        assert g.frequency_response(0.0) == pytest.approx(g.dc_gain())

    def test_evaluate_at_pole_raises(self):
        g = TransferFunction.integrator(1.0)
        with pytest.raises(ZeroDivisionError):
            g.evaluate(1.0)

    def test_properness(self):
        assert TransferFunction([1.0], [1.0, -0.5]).is_strictly_proper
        assert TransferFunction([1.0, 0.0], [1.0, -0.5]).is_proper
        assert not TransferFunction([1.0, 0.0, 0.0], [1.0, -0.5]).is_proper

    def test_almost_equal_ignores_scaling(self):
        a = TransferFunction([2.0], [2.0, -1.0])
        b = TransferFunction([1.0], [1.0, -0.5])
        assert a.almost_equal(b)

    def test_coercion_errors(self):
        with pytest.raises(ControlError):
            as_transfer_function("nope")
