"""Unit tests for difference-equation simulation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.control import (
    DifferenceEquation,
    TransferFunction,
    impulse_response,
    simulate,
    step_response,
)
from repro.errors import ControlError


class TestDifferenceEquation:
    def test_improper_tf_rejected(self):
        improper = TransferFunction([1.0, 0.0, 0.0], [1.0, -0.5])
        with pytest.raises(ControlError):
            DifferenceEquation(improper)

    def test_static_gain_passthrough(self):
        eq = DifferenceEquation(TransferFunction.gain(3.0))
        assert eq.step(2.0) == pytest.approx(6.0)

    def test_pure_delay(self):
        eq = DifferenceEquation(TransferFunction.delay(1))
        assert eq.step(5.0) == pytest.approx(0.0)
        assert eq.step(0.0) == pytest.approx(5.0)

    def test_integrator_accumulates(self):
        eq = DifferenceEquation(TransferFunction.integrator(1.0))
        outputs = [eq.step(1.0) for _ in range(5)]
        # y(k) = y(k-1) + u(k-1): 0,1,2,3,4
        assert outputs == pytest.approx([0.0, 1.0, 2.0, 3.0, 4.0])

    def test_reset(self):
        eq = DifferenceEquation(TransferFunction.integrator(1.0))
        for _ in range(3):
            eq.step(1.0)
        eq.reset()
        assert eq.step(1.0) == pytest.approx(0.0)

    def test_first_order_lag_converges_to_dc_gain(self):
        tf = TransferFunction([0.5], [1.0, -0.5])  # dc gain 1
        y = step_response(tf, 60)
        assert y[-1] == pytest.approx(tf.dc_gain(), abs=1e-6)


class TestResponses:
    def test_step_response_length(self):
        tf = TransferFunction([1.0], [1.0, -0.5])
        assert len(step_response(tf, 10)) == 10
        with pytest.raises(ControlError):
            step_response(tf, -1)

    def test_impulse_response_geometric(self):
        tf = TransferFunction([1.0], [1.0, -0.5])  # h(k) = 0.5^{k-1}, k>=1
        h = impulse_response(tf, 6)
        assert h[0] == pytest.approx(0.0)
        for k in range(1, 6):
            assert h[k] == pytest.approx(0.5 ** (k - 1))

    def test_impulse_zero_length(self):
        tf = TransferFunction([1.0], [1.0, -0.5])
        assert impulse_response(tf, 0) == []

    def test_simulate_linearity(self):
        tf = TransferFunction([1.0, 0.3], [1.0, -0.8, 0.1])
        u = [1.0, -2.0, 0.5, 3.0, 0.0, 1.0]
        y1 = simulate(tf, u)
        y2 = simulate(tf, [2 * x for x in u])
        assert y2 == pytest.approx([2 * v for v in y1])

    def test_simulate_superposition(self):
        tf = TransferFunction([1.0, 0.3], [1.0, -0.8, 0.1])
        u1 = [1.0, 0.0, 2.0, -1.0]
        u2 = [0.5, 1.5, -0.5, 0.0]
        ya = simulate(tf, [a + b for a, b in zip(u1, u2)])
        yb = [a + b for a, b in zip(simulate(tf, u1), simulate(tf, u2))]
        assert ya == pytest.approx(yb)


@given(st.floats(min_value=-0.95, max_value=0.95),
       st.floats(min_value=-5, max_value=5))
def test_first_order_step_matches_closed_form(pole, gain):
    """y(k) for g/(z-p) under a unit step has closed form g (1-p^k)/(1-p)."""
    tf = TransferFunction([gain], [1.0, -pole])
    y = simulate(tf, [1.0] * 20)
    for k in range(20):
        expected = gain * (1 - pole ** k) / (1 - pole) if pole != 1 else gain * k
        assert math.isclose(y[k], expected, rel_tol=1e-9, abs_tol=1e-9)


@given(st.floats(min_value=0.05, max_value=0.9))
def test_stable_impulse_response_sums_to_dc_gain(pole):
    tf = TransferFunction([1.0], [1.0, -pole])
    h = impulse_response(tf, 400)
    assert math.isclose(sum(h), tf.dc_gain(), rel_tol=1e-3)
