"""Unit tests for generic Diophantine pole placement."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.control import (
    Polynomial,
    TransferFunction,
    desired_characteristic,
    is_stable,
    place_poles,
    solve_diophantine,
    step_metrics,
    step_response,
    verify_unity_gain,
)
from repro.errors import ControlError, UnstableDesignError


class TestDesiredCharacteristic:
    def test_paper_clce(self):
        p = desired_characteristic([0.7, 0.7])
        assert p.almost_equal(Polynomial([1.0, -1.4, 0.49]))

    def test_rejects_unstable_request(self):
        with pytest.raises(UnstableDesignError):
            desired_characteristic([1.1])
        with pytest.raises(UnstableDesignError):
            desired_characteristic([1.0])


class TestSolveDiophantine:
    def test_reconstruction_identity(self):
        a = Polynomial([1.0, -1.0])           # z - 1 (integrator)
        b = Polynomial([0.00542])             # cT/H
        target = Polynomial([1.0, -1.4, 0.49])
        d, n = solve_diophantine(a, b, target)
        assert (d * a + n * b).almost_equal(target, tol=1e-8)

    def test_monic_controller_denominator(self):
        a = Polynomial([1.0, -1.0])
        b = Polynomial([1.0])
        d, n = solve_diophantine(a, b, Polynomial([1.0, -1.4, 0.49]))
        assert d.coeffs[0] == pytest.approx(1.0)

    def test_target_below_plant_degree_rejected(self):
        with pytest.raises(ControlError):
            solve_diophantine(Polynomial([1.0, 0.0, 0.0]), Polynomial([1.0]),
                              Polynomial([1.0, -0.5]))

    def test_non_coprime_plant_rejected(self):
        # a and b share the root z=1 -> cannot move that pole
        a = Polynomial([1.0, -1.0])
        b = Polynomial([1.0, -1.0])
        with pytest.raises(ControlError):
            solve_diophantine(a, b, Polynomial([1.0, -1.4, 0.49]),
                              controller_den_degree=0)


class TestPlacePoles:
    def test_integrator_plant_places_exactly(self):
        g = TransferFunction.integrator(0.00542)
        res = place_poles(g, [0.7, 0.7])
        achieved = sorted(p.real for p in res.achieved_poles)
        assert achieved == pytest.approx([0.7, 0.7], abs=1e-6)
        assert res.residual < 1e-8
        assert is_stable(res.closed_loop)

    def test_integrator_design_has_unity_gain_automatically(self):
        g = TransferFunction.integrator(0.00542)
        res = place_poles(g, [0.7, 0.7])
        assert verify_unity_gain(g, res.controller)

    def test_second_order_plant(self):
        g = TransferFunction([1.0], [1.0, -1.5, 0.56])  # poles 0.7, 0.8
        res = place_poles(g, [0.3, 0.3, 0.2, 0.2])
        achieved = sorted(p.real for p in res.achieved_poles)
        assert achieved == pytest.approx([0.2, 0.2, 0.3, 0.3], abs=1e-6)

    def test_deadbeat_design(self):
        g = TransferFunction.integrator(1.0)
        res = place_poles(g, [0.0, 0.0])
        y = step_response(res.closed_loop, 10)
        # deadbeat: settles in a finite number of samples
        assert y[4] == pytest.approx(y[-1], abs=1e-9)

    def test_faster_poles_converge_faster(self):
        g = TransferFunction.integrator(0.01)
        slow = place_poles(g, [0.9, 0.9]).closed_loop
        fast = place_poles(g, [0.4, 0.4]).closed_loop
        ms = step_metrics(step_response(slow, 120))
        mf = step_metrics(step_response(fast, 120))
        assert mf.settling_index < ms.settling_index

    def test_non_monic_plant_denominator_handled(self):
        g = TransferFunction([0.00526], [0.97, -0.97])  # cT/(H(z-1)) unnormalized
        res = place_poles(g, [0.7, 0.7])
        achieved = sorted(p.real for p in res.achieved_poles)
        assert achieved == pytest.approx([0.7, 0.7], abs=1e-6)


@given(st.floats(min_value=0.05, max_value=0.9),
       st.floats(min_value=0.05, max_value=0.9),
       st.floats(min_value=1e-4, max_value=10.0))
def test_placement_always_hits_requested_poles(p1, p2, gain):
    """For any stable real pole pair and plant gain, placement succeeds."""
    g = TransferFunction.integrator(gain)
    res = place_poles(g, [p1, p2])
    achieved = sorted(p.real for p in res.achieved_poles)
    assert achieved == pytest.approx(sorted([p1, p2]), abs=1e-4)
    assert is_stable(res.closed_loop)
